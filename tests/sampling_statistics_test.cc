// Statistical acceptance tests for the stratified draw phase — the
// correctness story of the splittable per-stratum RNG streams. The paper's
// estimator guarantees are properties of per-stratum inclusion
// probabilities, not of draw order (Nirkhiwale et al.'s sampling algebra),
// which is exactly what licenses splitting the RNG; these tests pin that
// property directly:
//   * per-stratum sample sizes match the allocation exactly,
//   * within every stratum, row inclusion probabilities are uniform
//     (chi-square over repeated seeded draws at the 0.999 level), and
//   * approximate AVG answers stay inside their CLT error bounds at high
//     confidence (via error_report against the exact executor),
// each across the OpenAQ / TPC-H / Bikes generators.
//
// Every repetition draws with a distinct fixed seed, so the suite is fully
// deterministic: thresholds sit at the 0.999 quantile (plus small slack for
// the chi-square approximation), and a pass is reproducible bit for bit.
// The chi-square repetitions dominate the runtime; ctest labels this binary
// "slow" so tools/run_tests.sh can skip it in the default tier-1 lap
// (opt back in with --slow).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/cvopt_allocator.h"
#include "src/core/stratification.h"
#include "src/datagen/bikes_gen.h"
#include "src/datagen/openaq_gen.h"
#include "src/datagen/tpch_gen.h"
#include "src/estimate/approx_executor.h"
#include "src/estimate/error_report.h"
#include "src/exec/group_by_executor.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/sampler.h"
#include "src/sample/senate_sampler.h"
#include "src/stats/stats_collector.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

// Chi-square quantile via the Wilson–Hilferty cube approximation — accurate
// to a fraction of a percent for the dof sizes used here (>= ~30).
double ChiSquareQuantile(double dof, double z) {
  const double a = 2.0 / (9.0 * dof);
  const double c = 1.0 - a + z * std::sqrt(a);
  return dof * c * c * c;
}

constexpr double kZ999 = 3.090232306167813;  // standard normal 0.999 quantile

struct GeneratorCase {
  const char* name;
  Table table;
  std::vector<std::string> strat_attrs;
  const char* value_column;
};

std::vector<GeneratorCase> MakeGenerators() {
  std::vector<GeneratorCase> cases;
  {
    OpenAqOptions o;
    o.num_rows = 20000;
    cases.push_back({"openaq", GenerateOpenAq(o), {"country"}, "value"});
  }
  {
    TpchOptions o;
    o.num_rows = 20000;
    cases.push_back({"tpch",
                     GenerateTpchLineitem(o),
                     {"returnflag", "linestatus"},
                     "extendedprice"});
  }
  {
    BikesOptions o;
    o.num_rows = 20000;
    cases.push_back({"bikes", GenerateBikes(o), {"gender"}, "trip_duration"});
  }
  return cases;
}

// An allocation exercising every edge the draw phase supports: roughly 1/8
// sampling for large strata, and take-all for strata below the cutoff.
std::vector<uint64_t> EighthAllocation(const Stratification& strat) {
  std::vector<uint64_t> alloc(strat.num_strata());
  for (size_t c = 0; c < alloc.size(); ++c) {
    alloc[c] = std::max<uint64_t>(1, strat.sizes()[c] / 8);
  }
  return alloc;
}

TEST(SamplingStatisticsTest, PerStratumSizesMatchAllocationExactly) {
  for (auto& g : MakeGenerators()) {
    ASSERT_OK_AND_ASSIGN(Stratification strat,
                         Stratification::Build(g.table, g.strat_attrs));
    auto shared = std::make_shared<Stratification>(std::move(strat));
    const size_t r = shared->num_strata();
    // Mix of regimes: stratum 0 take-all (allocation == population), the
    // rest 1/8 with a zero-allocation stratum thrown in.
    std::vector<uint64_t> alloc = EighthAllocation(*shared);
    alloc[0] = shared->sizes()[0];
    if (r > 2) alloc[r / 2] = 0;
    Rng rng(2024);
    ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                         DrawStratified(g.table, shared, alloc, "t", &rng));
    std::vector<uint64_t> counted(r, 0);
    for (uint32_t row : s.rows()) counted[shared->StratumOfRow(row)]++;
    for (size_t c = 0; c < r; ++c) {
      const uint64_t expect = std::min<uint64_t>(alloc[c], shared->sizes()[c]);
      EXPECT_EQ(counted[c], expect) << g.name << " stratum " << c;
    }
    // Drawn rows are distinct and stratum-consistent by construction.
    std::vector<uint32_t> sorted(s.rows());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << g.name << ": duplicate row drawn";
  }
}

TEST(SamplingStatisticsTest, InclusionProbabilityUniformWithinStrata) {
  // For SRSWOR of s_c from n_c, every row's inclusion probability is
  // p = s_c / n_c and the Pearson statistic over per-row hit counts,
  // rescaled by 1/(1-p) for the without-replacement marginal variance
  // p(1-p), is approximately chi-square with n_c - 1 dof. Assert at the
  // 0.999 quantile (5% slack for the approximation) per stratum.
  const int kReps = 600;
  for (auto& g : MakeGenerators()) {
    ASSERT_OK_AND_ASSIGN(Stratification strat,
                         Stratification::Build(g.table, g.strat_attrs));
    auto shared = std::make_shared<Stratification>(std::move(strat));
    const size_t r = shared->num_strata();
    const std::vector<uint64_t> alloc = EighthAllocation(*shared);

    std::vector<uint32_t> hits(g.table.num_rows(), 0);
    for (int rep = 0; rep < kReps; ++rep) {
      Rng rng(90000 + rep);
      ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                           DrawStratified(g.table, shared, alloc, "t", &rng));
      for (uint32_t row : s.rows()) hits[row]++;
    }

    // Per-stratum Pearson statistic over that stratum's rows.
    std::vector<double> x2(r, 0.0);
    for (size_t row = 0; row < g.table.num_rows(); ++row) {
      const uint32_t c = shared->StratumOfRow(row);
      const double p = static_cast<double>(alloc[c]) /
                       static_cast<double>(shared->sizes()[c]);
      const double e = kReps * p;
      const double d = static_cast<double>(hits[row]) - e;
      x2[c] += d * d / e;
    }
    size_t tested = 0;
    for (size_t c = 0; c < r; ++c) {
      const uint64_t n_c = shared->sizes()[c];
      const uint64_t s_c = alloc[c];
      // Take-all and tiny strata carry no randomness worth a chi-square.
      if (s_c >= n_c || n_c < 64) continue;
      const double p = static_cast<double>(s_c) / static_cast<double>(n_c);
      const double statistic = x2[c] / (1.0 - p);
      const double bound =
          1.05 * ChiSquareQuantile(static_cast<double>(n_c - 1), kZ999);
      EXPECT_LT(statistic, bound)
          << g.name << " stratum " << c << " (n=" << n_c << ", s=" << s_c
          << ")";
      ++tested;
    }
    EXPECT_GT(tested, 0u) << g.name;
  }
}

TEST(SamplingStatisticsTest, ApproxErrorsWithinCltBoundsAtConfidence) {
  // Stratified-uniform draws make the per-group AVG estimator a stratum
  // SRSWOR mean: Var = (1 - s/n) * sigma^2 / s (population sigma, finite-
  // population correction). Across repetitions and groups, the observed
  // relative error from error_report should exceed the 99.9% CLT bound
  // essentially never; allow 1% of answers for CLT approximation on small
  // strata. Groups here coincide with strata (group-by == stratification
  // attrs), so exact-result group order aligns with stratum order.
  const int kReps = 20;
  for (auto& g : MakeGenerators()) {
    QuerySpec q;
    q.group_by = g.strat_attrs;
    q.aggregates = {AggSpec::Avg(g.value_column)};

    ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(g.table, q));
    ASSERT_OK_AND_ASSIGN(Stratification strat,
                         Stratification::Build(g.table, g.strat_attrs));
    auto shared = std::make_shared<Stratification>(std::move(strat));
    ASSERT_OK_AND_ASSIGN(const Column* vcol,
                         g.table.ColumnByName(g.value_column));
    StatSource src;
    src.column = vcol;
    ASSERT_OK_AND_ASSIGN(GroupStatsTable stats,
                         CollectGroupStats(*shared, {src}));
    const std::vector<uint64_t> alloc = EighthAllocation(*shared);
    ASSERT_EQ(exact.num_groups(), shared->num_strata());

    size_t answers = 0, violations = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      Rng rng(77000 + rep);
      ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                           DrawStratified(g.table, shared, alloc, "t", &rng));
      ASSERT_OK_AND_ASSIGN(QueryResult approx, ExecuteApprox(s, q));
      ASSERT_OK_AND_ASSIGN(ErrorReport report, CompareResults(exact, approx));
      ASSERT_EQ(report.missing_groups, 0u) << g.name;
      ASSERT_EQ(report.skipped_zero_truth, 0u) << g.name;
      ASSERT_EQ(report.errors.size(), exact.num_groups()) << g.name;
      for (size_t c = 0; c < exact.num_groups(); ++c) {
        const double n_c = static_cast<double>(shared->sizes()[c]);
        const double s_c =
            static_cast<double>(std::min<uint64_t>(alloc[c], shared->sizes()[c]));
        const double mu = exact.value(c, 0);
        if (s_c >= n_c) {
          // Take-all strata answer exactly.
          EXPECT_LT(report.errors[c], 1e-9) << g.name << " stratum " << c;
          continue;
        }
        const double sigma = stats.At(c, 0).stddev_population();
        const double var = (1.0 - s_c / n_c) * sigma * sigma / s_c;
        const double bound = kZ999 * std::sqrt(var) / std::fabs(mu);
        ++answers;
        if (report.errors[c] > bound) ++violations;
      }
    }
    EXPECT_LT(static_cast<double>(violations),
              0.01 * static_cast<double>(answers) + 2.0)
        << g.name << ": " << violations << " of " << answers
        << " answers outside the 99.9% CLT bound";
  }
}

TEST(SamplingStatisticsTest, EndToEndSamplersHonorAllocationSizes) {
  // The sampler entry points hand DrawStratified their allocation in
  // stratification order; the realized per-stratum sizes must equal the
  // planned ones exactly (CVOPT via its plan, Senate via EqualAllocation).
  Table t = MakeSkewedTable(8, 150, /*seed=*/5);
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v")};

  CvoptSampler cvopt;
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan, cvopt.Plan(t, {q}, 600));
  Rng rng(31337);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, cvopt.Build(t, {q}, 600, &rng));
  ASSERT_NE(s.stratification(), nullptr);
  std::vector<uint64_t> counted(plan.strat->num_strata(), 0);
  for (uint32_t row : s.rows()) {
    counted[s.stratification()->StratumOfRow(row)]++;
  }
  for (size_t c = 0; c < counted.size(); ++c) {
    EXPECT_EQ(counted[c], plan.allocation.sizes[c]) << "stratum " << c;
  }

  SenateSampler senate;
  Rng rng2(31338);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s2, senate.Build(t, {q}, 600, &rng2));
  ASSERT_NE(s2.stratification(), nullptr);
  const std::vector<uint64_t> expect =
      EqualAllocation(s2.stratification()->sizes(), 600);
  std::vector<uint64_t> counted2(s2.stratification()->num_strata(), 0);
  for (uint32_t row : s2.rows()) {
    counted2[s2.stratification()->StratumOfRow(row)]++;
  }
  for (size_t c = 0; c < counted2.size(); ++c) {
    EXPECT_EQ(counted2[c], expect[c]) << "stratum " << c;
  }
}

}  // namespace
}  // namespace cvopt
