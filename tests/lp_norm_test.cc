// Tests for the l_p-norm allocation extension (paper §8 future work (2)).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/core/cvopt_allocator.h"
#include "src/core/lp_norm.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

uint64_t Total(const std::vector<uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), uint64_t{0});
}

TEST(LpNormTest, P2MatchesLemma1) {
  std::vector<double> alphas{1, 4, 16, 2.5};
  std::vector<uint64_t> caps{100000, 100000, 100000, 100000};
  ASSERT_OK_AND_ASSIGN(Allocation lp, SolveLpAllocation(alphas, caps, 700, 2.0));
  ASSERT_OK_AND_ASSIGN(Allocation l2, SolveLemma1(alphas, caps, 700));
  for (size_t i = 0; i < alphas.size(); ++i) {
    EXPECT_NEAR(lp.fractional[i], l2.fractional[i], 1e-9);
    EXPECT_EQ(lp.sizes[i], l2.sizes[i]);
  }
}

TEST(LpNormTest, ClosedFormExponent) {
  // s_i ∝ alpha_i^(p/(p+2)); check with p = 4: exponent 2/3.
  std::vector<double> alphas{1.0, 8.0};  // 8^(2/3) = 4 -> shares 1:4
  std::vector<uint64_t> caps{100000, 100000};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLpAllocation(alphas, caps, 500, 4.0));
  EXPECT_NEAR(a.fractional[0], 100.0, 1e-6);
  EXPECT_NEAR(a.fractional[1], 400.0, 1e-6);
}

TEST(LpNormTest, LargePApproachesProportionalToAlpha) {
  std::vector<double> alphas{1.0, 9.0};
  std::vector<uint64_t> caps{100000, 100000};
  // p -> inf: exponent -> 1, shares 1:9.
  ASSERT_OK_AND_ASSIGN(Allocation a,
                       SolveLpAllocation(alphas, caps, 1000, 1000.0));
  EXPECT_NEAR(a.fractional[1] / a.fractional[0], 9.0, 0.1);
}

TEST(LpNormTest, PInterpolatesConcentration) {
  // Higher p shifts allocation toward the worst (highest-alpha) stratum.
  Rng rng(3);
  std::vector<double> alphas(16);
  std::vector<uint64_t> caps(16, 1000000);
  for (auto& a : alphas) a = rng.UniformDouble(0.1, 10.0);
  const size_t worst =
      std::max_element(alphas.begin(), alphas.end()) - alphas.begin();
  double prev_share = 0;
  for (double p : {1.0, 2.0, 4.0, 8.0, 32.0}) {
    ASSERT_OK_AND_ASSIGN(Allocation a, SolveLpAllocation(alphas, caps, 16000, p));
    const double share =
        a.fractional[worst] / static_cast<double>(Total(a.sizes));
    EXPECT_GT(share, prev_share) << "p=" << p;
    prev_share = share;
  }
}

TEST(LpNormTest, RespectsCapsAndBudget) {
  std::vector<double> alphas{100.0, 1.0, 1.0};
  std::vector<uint64_t> caps{10, 500, 500};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLpAllocation(alphas, caps, 300, 6.0));
  EXPECT_EQ(a.sizes[0], 10u);
  EXPECT_EQ(Total(a.sizes), 300u);
}

TEST(LpNormTest, RejectsBadP) {
  EXPECT_FALSE(SolveLpAllocation({1.0}, {10}, 5, 0.5).ok());
  EXPECT_FALSE(SolveLpAllocation({1.0}, {10}, 5, -1.0).ok());
  EXPECT_FALSE(
      SolveLpAllocation({1.0}, {10}, 5, std::numeric_limits<double>::infinity())
          .ok());
}

TEST(LpNormTest, AllocatorIntegration) {
  Table t = MakeSkewedTable(6, 100);
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v")};
  AllocatorOptions opts;
  opts.norm = CvNorm::kLp;
  opts.lp_p = 6.0;
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       PlanCvoptAllocation(t, {q}, 120, opts));
  EXPECT_EQ(plan.TotalSize(), 120u);
  // The allocation differs from the l2 one (different norm).
  ASSERT_OK_AND_ASSIGN(AllocationPlan l2, PlanCvoptAllocation(t, {q}, 120));
  bool different = false;
  for (size_t c = 0; c < plan.allocation.sizes.size(); ++c) {
    if (plan.allocation.sizes[c] != l2.allocation.sizes[c]) different = true;
  }
  EXPECT_TRUE(different);
}

// Property: the fractional l_p solution beats random feasible perturbations
// under the l_p objective.
class LpOptimalityProperty : public testing::TestWithParam<double> {};

TEST_P(LpOptimalityProperty, PerturbationsDoNotImprove) {
  const double p = GetParam();
  Rng rng(static_cast<uint64_t>(p * 100) + 17);
  const size_t k = 10;
  std::vector<double> alphas(k);
  std::vector<uint64_t> caps(k, 1000000);
  for (auto& a : alphas) a = rng.UniformDouble(0.5, 20.0);
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLpAllocation(alphas, caps, 5000, p));

  auto objective = [&](const std::vector<double>& s) {
    double obj = 0;
    for (size_t i = 0; i < k; ++i) {
      obj += std::pow(alphas[i] / s[i], p / 2.0);
    }
    return obj;
  };
  const double opt = objective(a.fractional);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t i = rng.Uniform(k), j = rng.Uniform(k);
    if (i == j) continue;
    std::vector<double> s = a.fractional;
    const double delta = rng.UniformDouble(0.0, 0.2) * (s[i] - 1.0);
    if (delta <= 0) continue;
    s[i] -= delta;
    s[j] += delta;
    EXPECT_GE(objective(s), opt * (1 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Ps, LpOptimalityProperty,
                         testing::Values(1.0, 2.0, 3.0, 4.0, 8.0, 16.0));

}  // namespace
}  // namespace cvopt
