// Fail-point substrate: spec parsing, policy semantics (every-hit, @N,
// once, off), hit counting, and the inactive fast path.
#include "src/util/failpoint.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cvopt {
namespace {

namespace fp = failpoint;

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::ClearForTesting(); }
};

// A representative site under test, in a function shaped like production
// callers (returns Status through CVOPT_FAILPOINT).
Status SiteUnderTest() {
  CVOPT_FAILPOINT("test.site");
  return Status::OK();
}

TEST_F(FailpointTest, InactiveByDefault) {
  fp::ClearForTesting();
  EXPECT_FALSE(fp::Active());
  EXPECT_OK(SiteUnderTest());
  EXPECT_EQ(fp::HitCount("test.site"), 0u);  // fast path: not even counted
}

TEST_F(FailpointTest, ErrorPolicyFiresEveryHit) {
  ASSERT_OK(fp::SetForTesting("test.site:error"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(SiteUnderTest().code(), StatusCode::kInternal);
  }
  EXPECT_EQ(fp::HitCount("test.site"), 3u);
}

TEST_F(FailpointTest, TypedPolicies) {
  ASSERT_OK(fp::SetForTesting("test.site:resource"));
  EXPECT_EQ(SiteUnderTest().code(), StatusCode::kResourceExhausted);
  ASSERT_OK(fp::SetForTesting("test.site:deadline"));
  EXPECT_EQ(SiteUnderTest().code(), StatusCode::kDeadlineExceeded);
  ASSERT_OK(fp::SetForTesting("test.site:cancel"));
  EXPECT_EQ(SiteUnderTest().code(), StatusCode::kCancelled);
}

TEST_F(FailpointTest, NthHitOnly) {
  ASSERT_OK(fp::SetForTesting("test.site:error@3"));
  EXPECT_OK(SiteUnderTest());
  EXPECT_OK(SiteUnderTest());
  EXPECT_EQ(SiteUnderTest().code(), StatusCode::kInternal);  // the 3rd
  EXPECT_OK(SiteUnderTest());                                // the 4th
}

TEST_F(FailpointTest, OncePolicyFiresFirstHitOnly) {
  ASSERT_OK(fp::SetForTesting("test.site:once"));
  EXPECT_EQ(SiteUnderTest().code(), StatusCode::kInternal);
  EXPECT_OK(SiteUnderTest());
  EXPECT_OK(SiteUnderTest());
}

TEST_F(FailpointTest, OffPolicyCountsWithoutInjecting) {
  ASSERT_OK(fp::SetForTesting("test.site:off"));
  EXPECT_OK(SiteUnderTest());
  EXPECT_OK(SiteUnderTest());
  EXPECT_EQ(fp::HitCount("test.site"), 2u);
}

TEST_F(FailpointTest, UnarmedSiteCountsWhileSubstrateActive) {
  ASSERT_OK(fp::SetForTesting("other.site:error"));
  EXPECT_OK(SiteUnderTest());  // armed elsewhere, this site passes
  EXPECT_EQ(fp::HitCount("test.site"), 1u);
}

TEST_F(FailpointTest, MultiSiteSpec) {
  ASSERT_OK(fp::SetForTesting("a:error,test.site:resource,b:off"));
  EXPECT_EQ(SiteUnderTest().code(), StatusCode::kResourceExhausted);
}

TEST_F(FailpointTest, InjectedMessageNamesTheSite) {
  ASSERT_OK(fp::SetForTesting("test.site:error"));
  const Status st = SiteUnderTest();
  EXPECT_NE(st.ToString().find("test.site"), std::string::npos);
}

TEST_F(FailpointTest, MalformedSpecsRejectedWithoutSideEffects) {
  ASSERT_OK(fp::SetForTesting("test.site:error"));
  EXPECT_FALSE(fp::SetForTesting("nocolon").ok());
  EXPECT_FALSE(fp::SetForTesting(":error").ok());
  EXPECT_FALSE(fp::SetForTesting("x:bogus").ok());
  EXPECT_FALSE(fp::SetForTesting("x:error@").ok());
  EXPECT_FALSE(fp::SetForTesting("x:error@0").ok());
  EXPECT_FALSE(fp::SetForTesting("x:error@12junk").ok());
  EXPECT_FALSE(fp::SetForTesting("x:once@2").ok());
  // The failed updates left the previous arming in place.
  EXPECT_EQ(SiteUnderTest().code(), StatusCode::kInternal);
}

TEST_F(FailpointTest, ClearDisarmsAndForgetsCounts) {
  ASSERT_OK(fp::SetForTesting("test.site:error"));
  EXPECT_FALSE(SiteUnderTest().ok());
  fp::ClearForTesting();
  EXPECT_FALSE(fp::Active());
  EXPECT_OK(SiteUnderTest());
  EXPECT_EQ(fp::HitCount("test.site"), 0u);
}

TEST_F(FailpointTest, StatusMacroFormForVoidContexts) {
  ASSERT_OK(fp::SetForTesting("test.site:deadline"));
  Status st = CVOPT_FAILPOINT_STATUS("test.site");
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  fp::ClearForTesting();
  EXPECT_OK(CVOPT_FAILPOINT_STATUS("test.site"));
}

}  // namespace
}  // namespace cvopt
