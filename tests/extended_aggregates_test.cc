// Tests for the Section-5 aggregate extension: per-group VARIANCE and
// MEDIAN, exact and sample-estimated.
#include <gtest/gtest.h>

#include <cmath>

#include "src/estimate/approx_executor.h"
#include "src/exec/group_by_executor.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/uniform_sampler.h"
#include "src/sql/parser.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(ExtendedAggTest, Labels) {
  EXPECT_EQ(AggSpec::Variance("v").Label(), "VAR(v)");
  EXPECT_EQ(AggSpec::Median("v").Label(), "MEDIAN(v)");
}

TEST(ExtendedAggTest, ExactVarianceByGroup) {
  Table t = MakeStudentTable();
  QuerySpec q;
  q.group_by = {"major"};
  q.aggregates = {AggSpec::Variance("gpa")};
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  // CS gpas: 3.4, 3.1 -> mean 3.25, population var = 0.0225.
  auto cs = res.FindByLabel("CS");
  ASSERT_TRUE(cs.has_value());
  EXPECT_NEAR(res.value(*cs, 0), 0.0225, 1e-12);
}

TEST(ExtendedAggTest, ExactMedianOddAndEven) {
  // Odd group: 3 values; even group: 4 values (median = midpoint).
  Schema schema({{"g", DataType::kString}, {"v", DataType::kDouble}});
  TableBuilder b(schema);
  for (double v : {1.0, 9.0, 5.0}) ASSERT_OK(b.AppendRow({Value("odd"), Value(v)}));
  for (double v : {1.0, 3.0, 7.0, 9.0}) {
    ASSERT_OK(b.AppendRow({Value("even"), Value(v)}));
  }
  Table t = std::move(b).Finish();
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Median("v")};
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  auto odd = res.FindByLabel("odd");
  auto even = res.FindByLabel("even");
  ASSERT_TRUE(odd.has_value());
  ASSERT_TRUE(even.has_value());
  EXPECT_DOUBLE_EQ(res.value(*odd, 0), 5.0);
  EXPECT_DOUBLE_EQ(res.value(*even, 0), 5.0);  // (3 + 7) / 2
}

TEST(ExtendedAggTest, FullBudgetSampleMatchesExactVariance) {
  Table t = MakeSkewedTable(4, 50);
  Rng rng(71);
  CvoptSampler cvopt;
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Variance("v"), AggSpec::Median("v")};
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, cvopt.Build(t, {q}, t.num_rows(), &rng));
  ASSERT_OK_AND_ASSIGN(QueryResult approx, ExecuteApprox(s, q));
  ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(t, q));
  for (size_t i = 0; i < exact.num_groups(); ++i) {
    auto j = approx.Find(exact.key(i));
    ASSERT_TRUE(j.has_value());
    EXPECT_NEAR(approx.value(*j, 0), exact.value(i, 0),
                1e-9 * std::max(1.0, exact.value(i, 0)));
    EXPECT_NEAR(approx.value(*j, 1), exact.value(i, 1),
                1e-9 * std::max(1.0, std::fabs(exact.value(i, 1))));
  }
}

TEST(ExtendedAggTest, SampledVarianceAndMedianAreClose) {
  Table t = MakeSkewedTable(4, 800, /*seed=*/73);
  Rng rng(79);
  CvoptSampler cvopt;
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Variance("v"), AggSpec::Median("v")};
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, cvopt.Build(t, {q}, 800, &rng));
  ASSERT_OK_AND_ASSIGN(QueryResult approx, ExecuteApprox(s, q));
  ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(t, q));
  for (size_t i = 0; i < exact.num_groups(); ++i) {
    auto j = approx.Find(exact.key(i));
    ASSERT_TRUE(j.has_value());
    // Variance: 30% relative tolerance at a ~25% per-group sampling rate.
    EXPECT_NEAR(approx.value(*j, 0), exact.value(i, 0),
                0.3 * exact.value(i, 0) + 1e-9);
    // Median: within 5% of the true median (means are ~10..40).
    EXPECT_NEAR(approx.value(*j, 1), exact.value(i, 1),
                0.05 * std::fabs(exact.value(i, 1)));
  }
}

TEST(ExtendedAggTest, WeightedMedianRespectsWeights) {
  // Stratified sample with unequal weights: rows of the big stratum carry
  // 10x weight, so the weighted median must come from the big stratum's
  // value range even though both strata contribute equal sample rows.
  Schema schema({{"g", DataType::kString}, {"v", DataType::kDouble}});
  TableBuilder b(schema);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(b.AppendRow({Value("big"), Value(100.0 + (i % 10))}));
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(b.AppendRow({Value("small"), Value(1.0 + (i % 10))}));
  }
  Table t = std::move(b).Finish();
  Rng rng(83);
  // Build a senate-style 50/50 sample over g via CVOPT on equal budget.
  CvoptSampler cvopt;
  QuerySpec build_q;
  build_q.group_by = {"g"};
  build_q.aggregates = {AggSpec::Avg("v")};
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, cvopt.Build(t, {build_q}, 200, &rng));
  // Full-table median: 1100 rows, 1000 of them around ~104.5.
  QuerySpec q;
  q.aggregates = {AggSpec::Median("v")};
  ASSERT_OK_AND_ASSIGN(QueryResult approx, ExecuteApprox(s, q));
  ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(t, q));
  EXPECT_NEAR(approx.value(0, 0), exact.value(0, 0), 2.0);
  EXPECT_GT(approx.value(0, 0), 99.0);  // must land in the big stratum
}

TEST(ExtendedAggTest, SqlParsesVarAndMedian) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p,
      ParseSql("SELECT g, VAR(v), MEDIAN(v), VARIANCE(w) FROM t GROUP BY g"));
  ASSERT_EQ(p.query.aggregates.size(), 3u);
  EXPECT_EQ(p.query.aggregates[0].Label(), "VAR(v)");
  EXPECT_EQ(p.query.aggregates[1].Label(), "MEDIAN(v)");
  EXPECT_EQ(p.query.aggregates[2].Label(), "VAR(w)");
}

TEST(ExtendedAggTest, AllocatorAcceptsExtendedAggregates) {
  Table t = MakeSkewedTable(3, 100);
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Variance("v")};
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan, PlanCvoptAllocation(t, {q}, 60));
  EXPECT_EQ(plan.TotalSize(), 60u);
}

}  // namespace
}  // namespace cvopt
