// Tests for the AqpEngine facade.
#include <gtest/gtest.h>

#include "src/aqp/engine.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/uniform_sampler.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

QuerySpec AvgV() {
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v")};
  return q;
}

TEST(AqpEngineTest, BuildGetDrop) {
  Table t = MakeSkewedTable(4, 50);
  AqpEngine engine(&t);
  CvoptSampler cvopt;
  ASSERT_OK(engine.BuildSample("s1", cvopt, {AvgV()}, 0.5));
  EXPECT_EQ(engine.num_samples(), 1u);
  ASSERT_OK_AND_ASSIGN(const StratifiedSample* s, engine.GetSample("s1"));
  EXPECT_EQ(s->method(), "CVOPT");
  EXPECT_NEAR(s->SampleRate(), 0.5, 0.05);
  EXPECT_FALSE(engine.GetSample("nope").ok());
  engine.DropSample("s1");
  EXPECT_EQ(engine.num_samples(), 0u);
}

TEST(AqpEngineTest, RateValidation) {
  Table t = MakeSkewedTable(2, 10);
  AqpEngine engine(&t);
  UniformSampler u;
  EXPECT_FALSE(engine.BuildSample("x", u, {}, 0.0).ok());
  EXPECT_FALSE(engine.BuildSample("x", u, {}, 1.5).ok());
  EXPECT_OK(engine.BuildSample("x", u, {}, 1.0));
}

TEST(AqpEngineTest, ReplacesSampleUnderSameName) {
  Table t = MakeSkewedTable(2, 50);
  AqpEngine engine(&t);
  UniformSampler u;
  CvoptSampler cvopt;
  ASSERT_OK(engine.BuildSample("s", u, {}, 0.2));
  ASSERT_OK(engine.BuildSample("s", cvopt, {AvgV()}, 0.2));
  ASSERT_OK_AND_ASSIGN(const StratifiedSample* s, engine.GetSample("s"));
  EXPECT_EQ(s->method(), "CVOPT");
  EXPECT_EQ(engine.num_samples(), 1u);
}

TEST(AqpEngineTest, ExactVsApproxAndEvaluate) {
  Table t = MakeSkewedTable(5, 100);
  AqpEngine engine(&t, /*seed=*/7);
  CvoptSampler cvopt;
  ASSERT_OK(engine.BuildSample("s", cvopt, {AvgV()}, 0.3));

  ASSERT_OK_AND_ASSIGN(QueryResult exact, engine.AnswerExact(AvgV()));
  EXPECT_EQ(exact.num_groups(), 5u);
  ASSERT_OK_AND_ASSIGN(QueryResult approx, engine.AnswerApprox("s", AvgV()));
  EXPECT_EQ(approx.num_groups(), 5u);

  ASSERT_OK_AND_ASSIGN(ErrorReport rep, engine.Evaluate("s", AvgV()));
  EXPECT_EQ(rep.errors.size(), 5u);
  EXPECT_LT(rep.MaxError(), 0.2);  // 30% CVOPT sample is quite accurate here
}

TEST(AqpEngineTest, EvaluateSurfacesExhaustiveStrata) {
  // A budget at the table size forces every stratum into take-all service;
  // the report must say so (strata served exactly == all of them) and the
  // errors must be exactly zero — distinguishable from genuinely sampled
  // near-zero error.
  Table t = MakeSkewedTable(3, 20);  // 20 + 40 + 60 rows
  AqpEngine engine(&t, /*seed=*/11);
  CvoptSampler cvopt;
  ASSERT_OK(engine.BuildSample("all", cvopt, {AvgV()}, 1.0));
  ASSERT_OK_AND_ASSIGN(ErrorReport rep, engine.Evaluate("all", AvgV()));
  EXPECT_EQ(rep.total_strata, 3u);
  EXPECT_EQ(rep.exhaustive_strata, 3u);
  EXPECT_EQ(rep.MaxError(), 0.0);
  EXPECT_NE(rep.ToString().find("strata served exactly: 3/3"),
            std::string::npos);

  // A small sample over skewed strata: the report shows how many strata
  // were exhausted (small strata often are under CVOPT), bounded by total.
  ASSERT_OK(engine.BuildSample("part", cvopt, {AvgV()}, 0.3));
  ASSERT_OK_AND_ASSIGN(const StratifiedSample* s, engine.GetSample("part"));
  ASSERT_OK_AND_ASSIGN(ErrorReport partial, engine.Evaluate("part", AvgV()));
  EXPECT_EQ(partial.total_strata, 3u);
  EXPECT_EQ(partial.exhaustive_strata, s->num_exhaustive_strata());
  EXPECT_LE(partial.exhaustive_strata, partial.total_strata);
}

TEST(AqpEngineTest, BudgetVariant) {
  Table t = MakeSkewedTable(3, 100);
  AqpEngine engine(&t);
  UniformSampler u;
  ASSERT_OK(engine.BuildSampleWithBudget("b", u, {}, 123));
  ASSERT_OK_AND_ASSIGN(const StratifiedSample* s, engine.GetSample("b"));
  EXPECT_EQ(s->size(), 123u);
}

TEST(AqpEngineTest, DeterministicAcrossSeeds) {
  Table t = MakeSkewedTable(3, 100);
  UniformSampler u;
  AqpEngine e1(&t, 99), e2(&t, 99);
  ASSERT_OK(e1.BuildSampleWithBudget("s", u, {}, 50));
  ASSERT_OK(e2.BuildSampleWithBudget("s", u, {}, 50));
  ASSERT_OK_AND_ASSIGN(const StratifiedSample* s1, e1.GetSample("s"));
  ASSERT_OK_AND_ASSIGN(const StratifiedSample* s2, e2.GetSample("s"));
  EXPECT_EQ(s1->rows(), s2->rows());
}

}  // namespace
}  // namespace cvopt
