// Tests for PlanCvoptAllocation: Theorem 1 (SASG), Theorem 2 (MASG),
// Lemma 2 (SAMG), Lemma 3 / general formula (MAMG), weights, and the
// finest-stratification behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/core/cvopt_allocator.h"
#include "src/stats/stats_collector.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

// Builds a 2-group table where group sizes/means are equal but sigma differs:
// the motivating example of Section 1 — the high-variance group must get
// more samples.
Table MakeTwoGroupsDifferentSigma() {
  Schema schema({{"g", DataType::kString}, {"v", DataType::kDouble}});
  TableBuilder b(schema);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_OK(b.AppendRow({Value("hi_var"), Value(100.0 + 20.0 * rng.NextGaussian())}));
    EXPECT_OK(b.AppendRow({Value("lo_var"), Value(100.0 + 2.0 * rng.NextGaussian())}));
  }
  return std::move(b).Finish();
}

QuerySpec Sasg(const std::string& gcol, const std::string& vcol) {
  QuerySpec q;
  q.group_by = {gcol};
  q.aggregates = {AggSpec::Avg(vcol)};
  return q;
}

TEST(AllocatorTest, HighVarianceGroupGetsMoreSamples) {
  Table t = MakeTwoGroupsDifferentSigma();
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       PlanCvoptAllocation(t, {Sasg("g", "v")}, 200));
  ASSERT_EQ(plan.strat->num_strata(), 2u);
  size_t hi = plan.strat->Label(0) == "hi_var" ? 0 : 1;
  EXPECT_GT(plan.allocation.sizes[hi], plan.allocation.sizes[1 - hi] * 5);
  EXPECT_EQ(plan.TotalSize(), 200u);
}

TEST(AllocatorTest, SasgMatchesTheorem1ClosedForm) {
  Table t = MakeSkewedTable(4, 100, /*seed=*/9);
  const std::vector<QuerySpec> queries = {Sasg("g", "v")};
  const uint64_t budget = 120;
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       PlanCvoptAllocation(t, queries, budget));

  // Recompute Theorem 1 by hand: s_i = M * (sigma_i/mu_i) / sum_j (...).
  ASSERT_OK_AND_ASSIGN(const Column* v, t.ColumnByName("v"));
  StatSource src;
  src.column = v;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats,
                       CollectGroupStats(*plan.strat, {src}));
  const size_t r = plan.strat->num_strata();
  std::vector<double> gamma(r);
  double gamma_sum = 0;
  for (size_t i = 0; i < r; ++i) {
    gamma[i] = stats.At(i, 0).stddev_population() / stats.At(i, 0).mean();
    gamma_sum += gamma[i];
  }
  for (size_t i = 0; i < r; ++i) {
    const double expected = budget * gamma[i] / gamma_sum;
    EXPECT_NEAR(plan.allocation.fractional[i], expected, 1e-6)
        << "stratum " << plan.strat->Label(i);
  }
}

TEST(AllocatorTest, BetaIsSigmaOverMuSquaredForSasg) {
  Table t = MakeSkewedTable(3, 50);
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       PlanCvoptAllocation(t, {Sasg("g", "v")}, 60));
  ASSERT_OK_AND_ASSIGN(const Column* v, t.ColumnByName("v"));
  StatSource src;
  src.column = v;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats,
                       CollectGroupStats(*plan.strat, {src}));
  for (size_t i = 0; i < plan.strat->num_strata(); ++i) {
    const double cv = stats.At(i, 0).cv();
    EXPECT_NEAR(plan.betas[i], cv * cv, 1e-9);
  }
}

TEST(AllocatorTest, MasgSumsAlphaOverAggregates) {
  // Theorem 2: alpha_i = sum_j w_j sigma_ij^2 / mu_ij^2.
  Table t = MakeStudentTable();
  QuerySpec q;
  q.group_by = {"college"};
  q.aggregates = {AggSpec::Avg("age", 2.0), AggSpec::Avg("gpa", 3.0)};
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan, PlanCvoptAllocation(t, {q}, 6));
  ASSERT_EQ(plan.strat->num_strata(), 2u);

  ASSERT_OK_AND_ASSIGN(const Column* age, t.ColumnByName("age"));
  ASSERT_OK_AND_ASSIGN(const Column* gpa, t.ColumnByName("gpa"));
  StatSource s1, s2;
  s1.column = age;
  s2.column = gpa;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats,
                       CollectGroupStats(*plan.strat, {s1, s2}));
  for (size_t i = 0; i < 2; ++i) {
    const double cv_age = stats.At(i, 0).cv();
    const double cv_gpa = stats.At(i, 1).cv();
    EXPECT_NEAR(plan.betas[i], 2.0 * cv_age * cv_age + 3.0 * cv_gpa * cv_gpa,
                1e-9);
  }
}

TEST(AllocatorTest, SamgUsesFinestStratification) {
  // Two SASG queries grouping by major and college: stratification must be
  // by (major, college) and betas must follow Lemma 2.
  Table t = MakeStudentTable();
  QuerySpec q1 = Sasg("major", "gpa");
  QuerySpec q2 = Sasg("college", "gpa");
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       PlanCvoptAllocation(t, {q1, q2}, 6));
  EXPECT_EQ(plan.strat->attrs(),
            (std::vector<std::string>{"major", "college"}));
  EXPECT_EQ(plan.strat->num_strata(), 4u);

  // Hand-compute beta for the CS|Science stratum.
  ASSERT_OK_AND_ASSIGN(const Column* gpa, t.ColumnByName("gpa"));
  StatSource src;
  src.column = gpa;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats,
                       CollectGroupStats(*plan.strat, {src}));
  ASSERT_OK_AND_ASSIGN(Stratification::Projection pmaj,
                       plan.strat->Project({"major"}));
  ASSERT_OK_AND_ASSIGN(Stratification::Projection pcol,
                       plan.strat->Project({"college"}));
  // College-level stats for the mu of the college estimate.
  GroupStatsTable cstats(pcol.num_parents(), 1);
  for (size_t c = 0; c < plan.strat->num_strata(); ++c) {
    cstats.At(pcol.stratum_to_parent[c], 0).Merge(stats.At(c, 0));
  }
  for (size_t c = 0; c < plan.strat->num_strata(); ++c) {
    const double n_c = static_cast<double>(plan.strat->sizes()[c]);
    const double sigma2 = stats.At(c, 0).variance_population();
    const uint32_t a1 = pmaj.stratum_to_parent[c];
    const uint32_t a2 = pcol.stratum_to_parent[c];
    const double n_a1 = static_cast<double>(pmaj.parent_sizes[a1]);
    const double n_a2 = static_cast<double>(pcol.parent_sizes[a2]);
    // Within a major stratum == group, so mu of major group = stratum mean.
    const double mu1 = stats.At(c, 0).mean();
    const double mu2 = cstats.At(a2, 0).mean();
    const double expected =
        n_c * n_c * sigma2 *
        (1.0 / (n_a1 * n_a1 * mu1 * mu1) + 1.0 / (n_a2 * n_a2 * mu2 * mu2));
    EXPECT_NEAR(plan.betas[c], expected, 1e-9) << plan.strat->Label(c);
  }
}

TEST(AllocatorTest, QueryWeightScalesItsContribution) {
  Table t = MakeStudentTable();
  QuerySpec q1 = Sasg("major", "gpa");
  QuerySpec q2 = Sasg("college", "gpa");

  ASSERT_OK_AND_ASSIGN(AllocationPlan base,
                       PlanCvoptAllocation(t, {q1, q2}, 6));
  q2.weight = 100.0;
  ASSERT_OK_AND_ASSIGN(AllocationPlan boosted,
                       PlanCvoptAllocation(t, {q1, q2}, 6));
  // Boosting q2's weight multiplies its beta term by 100; betas change.
  bool changed = false;
  for (size_t c = 0; c < base.betas.size(); ++c) {
    if (std::fabs(base.betas[c] - boosted.betas[c]) > 1e-12) changed = true;
    EXPECT_GE(boosted.betas[c], base.betas[c]);
  }
  EXPECT_TRUE(changed);
}

TEST(AllocatorTest, GroupWeightFnPrioritizesGroups) {
  Table t = MakeTwoGroupsDifferentSigma();
  AllocatorOptions opts;
  // Zero out the high-variance group: all optimization mass should flow to
  // the low-variance group.
  ASSERT_OK_AND_ASSIGN(Stratification probe, Stratification::Build(t, {"g"}));
  ASSERT_OK_AND_ASSIGN(size_t gcol, t.ColumnIndex("g"));
  opts.group_weight_fn = [&t, gcol](size_t, const GroupKey& key,
                                    size_t) -> double {
    return key.Render(t, {gcol}) == "hi_var" ? 0.0 : 1.0;
  };
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       PlanCvoptAllocation(t, {Sasg("g", "v")}, 200, opts));
  const size_t hi = plan.strat->Label(0) == "hi_var" ? 0 : 1;
  EXPECT_EQ(plan.betas[hi], 0.0);
  EXPECT_LT(plan.allocation.sizes[hi], plan.allocation.sizes[1 - hi]);
}

TEST(AllocatorTest, MamgTwoAggregatesTwoGroupings) {
  // Lemma 3 shape: Q1 aggregates age by major, Q2 aggregates gpa by college.
  Table t = MakeStudentTable();
  QuerySpec q1 = Sasg("major", "age");
  QuerySpec q2 = Sasg("college", "gpa");
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       PlanCvoptAllocation(t, {q1, q2}, 6));
  EXPECT_EQ(plan.strat->num_strata(), 4u);
  EXPECT_EQ(plan.TotalSize(), 6u);
  // All betas positive: every stratum matters for at least one query.
  for (double b : plan.betas) EXPECT_GT(b, 0.0);
}

TEST(AllocatorTest, RejectsBadInput) {
  Table t = MakeStudentTable();
  EXPECT_FALSE(PlanCvoptAllocation(t, {}, 10).ok());
  QuerySpec no_aggs;
  no_aggs.group_by = {"major"};
  EXPECT_FALSE(PlanCvoptAllocation(t, {no_aggs}, 10).ok());
}

TEST(AllocatorTest, LinfRequiresSasg) {
  Table t = MakeStudentTable();
  AllocatorOptions opts;
  opts.norm = CvNorm::kLinf;
  QuerySpec masg;
  masg.group_by = {"major"};
  masg.aggregates = {AggSpec::Avg("gpa"), AggSpec::Avg("age")};
  EXPECT_FALSE(PlanCvoptAllocation(t, {masg}, 6, opts).ok());
  ASSERT_TRUE(PlanCvoptAllocation(t, {Sasg("major", "gpa")}, 6, opts).ok());
}

TEST(AllocatorTest, BudgetLargerThanTableTakesAll) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       PlanCvoptAllocation(t, {Sasg("major", "gpa")}, 1000));
  EXPECT_EQ(plan.TotalSize(), t.num_rows());
}

}  // namespace
}  // namespace cvopt
