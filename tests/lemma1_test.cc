// Tests for the Lemma 1 solver: closed form, caps, minimums, rounding, and
// an optimality property test (random feasible perturbations never improve
// the objective).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/core/lemma1.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

uint64_t Total(const std::vector<uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), uint64_t{0});
}

TEST(Lemma1Test, ClosedFormWhenUnconstrained) {
  // alphas 1, 4, 16 -> sqrt 1, 2, 4 -> shares 1/7, 2/7, 4/7 of 700.
  std::vector<double> alphas{1, 4, 16};
  std::vector<uint64_t> caps{100000, 100000, 100000};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, 700));
  EXPECT_NEAR(a.fractional[0], 100, 1e-6);
  EXPECT_NEAR(a.fractional[1], 200, 1e-6);
  EXPECT_NEAR(a.fractional[2], 400, 1e-6);
  EXPECT_EQ(a.sizes[0], 100u);
  EXPECT_EQ(a.sizes[1], 200u);
  EXPECT_EQ(a.sizes[2], 400u);
}

TEST(Lemma1Test, BudgetSpentExactly) {
  std::vector<double> alphas{3, 1, 7, 2};
  std::vector<uint64_t> caps{1000, 1000, 1000, 1000};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, 123));
  EXPECT_EQ(Total(a.sizes), 123u);
}

TEST(Lemma1Test, CapsRespectedAndBudgetRedistributed) {
  // Stratum 0 wants most of the budget but only has 10 rows.
  std::vector<double> alphas{1000, 1, 1};
  std::vector<uint64_t> caps{10, 500, 500};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, 300));
  EXPECT_EQ(a.sizes[0], 10u);
  EXPECT_EQ(Total(a.sizes), 300u);  // surplus went to strata 1 and 2
  EXPECT_EQ(a.sizes[1], a.sizes[2]);
}

TEST(Lemma1Test, BudgetCoversPopulation) {
  std::vector<double> alphas{1, 2};
  std::vector<uint64_t> caps{5, 7};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, 100));
  EXPECT_EQ(a.sizes[0], 5u);
  EXPECT_EQ(a.sizes[1], 7u);
}

TEST(Lemma1Test, EveryNonemptyStratumGetsOneRow) {
  // Stratum 1 has tiny alpha but must still be represented.
  std::vector<double> alphas{1000, 1e-9, 500};
  std::vector<uint64_t> caps{10000, 10000, 10000};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, 50));
  EXPECT_GE(a.sizes[1], 1u);
  EXPECT_EQ(Total(a.sizes), 50u);
}

TEST(Lemma1Test, ZeroAlphaGetsExactlyMinimum) {
  std::vector<double> alphas{0.0, 10.0, 10.0};
  std::vector<uint64_t> caps{100, 100, 100};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, 21));
  EXPECT_EQ(a.sizes[0], 1u);  // sigma == 0: one row suffices
  EXPECT_EQ(Total(a.sizes), 21u);
  EXPECT_EQ(a.sizes[1], a.sizes[2]);
}

TEST(Lemma1Test, EmptyStratumGetsNothing) {
  std::vector<double> alphas{5.0, 5.0};
  std::vector<uint64_t> caps{0, 100};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, 10));
  EXPECT_EQ(a.sizes[0], 0u);
  EXPECT_EQ(a.sizes[1], 10u);
}

TEST(Lemma1Test, DegenerateBudgetBelowStratumCount) {
  std::vector<double> alphas{1.0, 100.0, 10.0, 50.0};
  std::vector<uint64_t> caps{10, 10, 10, 10};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, 2));
  EXPECT_EQ(Total(a.sizes), 2u);
  // The two largest alphas win.
  EXPECT_EQ(a.sizes[1], 1u);
  EXPECT_EQ(a.sizes[3], 1u);
}

TEST(Lemma1Test, InvalidInputs) {
  EXPECT_FALSE(SolveLemma1({1.0}, {1, 2}, 10).ok());            // size mismatch
  EXPECT_FALSE(SolveLemma1({-1.0}, {5}, 10).ok());              // negative alpha
  EXPECT_FALSE(SolveLemma1({std::nan("")}, {5}, 10).ok());      // NaN alpha
}

TEST(Lemma1Test, EmptyProblem) {
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1({}, {}, 10));
  EXPECT_TRUE(a.sizes.empty());
}

TEST(Lemma1Test, ObjectiveComputation) {
  Allocation a;
  a.sizes = {10, 20};
  EXPECT_DOUBLE_EQ(a.Objective({100.0, 40.0}), 10.0 + 2.0);
  a.sizes = {0, 20};
  EXPECT_DOUBLE_EQ(a.Objective({100.0, 40.0}), 2.0);  // zero-size skipped
}

// Property test: the solver's fractional solution beats (or ties) random
// feasible alternatives across many random problem instances.
class Lemma1OptimalityProperty : public testing::TestWithParam<int> {};

TEST_P(Lemma1OptimalityProperty, NoFeasiblePerturbationImproves) {
  Rng rng(1000 + GetParam());
  const size_t k = 2 + rng.Uniform(20);
  std::vector<double> alphas(k);
  std::vector<uint64_t> caps(k);
  for (size_t i = 0; i < k; ++i) {
    alphas[i] = rng.UniformDouble(0.0, 100.0);
    caps[i] = 50 + rng.Uniform(5000);
  }
  const uint64_t budget = k + rng.Uniform(2000);
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveLemma1(alphas, caps, budget));

  auto objective = [&](const std::vector<double>& s) {
    double obj = 0;
    for (size_t i = 0; i < k; ++i) {
      if (alphas[i] > 0) obj += alphas[i] / std::max(s[i], 1e-12);
    }
    return obj;
  };
  const double opt = objective(a.fractional);

  // Move mass between random pairs; objective must not drop by more than
  // floating-point noise (the lower bound s_i >= 1 makes exact KKT
  // comparisons valid only for interior moves, which these are).
  for (int trial = 0; trial < 200; ++trial) {
    const size_t i = rng.Uniform(k), j = rng.Uniform(k);
    if (i == j) continue;
    std::vector<double> s = a.fractional;
    const double delta =
        rng.UniformDouble(0.0, 0.25) * std::min(s[i] - 1.0, 1000.0);
    if (delta <= 0) continue;
    if (s[j] + delta > static_cast<double>(caps[j])) continue;
    s[i] -= delta;
    s[j] += delta;
    EXPECT_GE(objective(s), opt * (1 - 1e-9))
        << "perturbation improved the objective at trial " << trial;
  }

  // Feasibility of the integral solution.
  uint64_t total = Total(a.sizes);
  EXPECT_LE(total, budget);
  for (size_t i = 0; i < k; ++i) EXPECT_LE(a.sizes[i], caps[i]);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Lemma1OptimalityProperty,
                         testing::Range(0, 12));

}  // namespace
}  // namespace cvopt
