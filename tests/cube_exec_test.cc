// Differential tests for the shared-pass CUBE executor: ExecuteCube must
// reproduce per-spec ExecuteExact for every grouping set — identical group
// sets, emission order, labels, exact counts and medians, and sums within
// the float-summation tolerance (rollup reassociates additions) — across
// filters, thread counts, and the forced radix-partitioned build.
#include "src/exec/cube.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/datagen/openaq_gen.h"
#include "src/exec/group_by_executor.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

const Table& CubeTable() {
  static const Table* t = [] {
    OpenAqOptions opts;
    opts.num_rows = 30011;  // non-power-of-two
    return new Table(GenerateOpenAq(opts));
  }();
  return *t;
}

QuerySpec CubeBase(bool filtered) {
  QuerySpec q;
  q.name = "cube";
  q.group_by = {"country", "parameter", "hour"};
  q.aggregates = {
      AggSpec::Avg("value"),    AggSpec::Sum("value"),
      AggSpec::Count(),
      AggSpec::CountIf(
          Predicate::Compare("value", CompareOp::kGt, Value(0.04))),
      AggSpec::Variance("value"), AggSpec::Median("value")};
  if (filtered) q.where = Predicate::Between("hour", 0, 11);
  return q;
}

void ExpectCubeMatchesPerSpec(const Table& t, const QuerySpec& base) {
  const std::vector<QuerySpec> specs = ExpandCube(base);
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> cube, ExecuteCube(t, base));
  ASSERT_EQ(cube.size(), specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    ASSERT_OK_AND_ASSIGN(QueryResult direct, ExecuteExact(t, specs[s]));
    const QueryResult& rolled = cube[s];
    ASSERT_EQ(rolled.num_groups(), direct.num_groups()) << specs[s].name;
    ASSERT_EQ(rolled.num_aggregates(), direct.num_aggregates());
    for (size_t i = 0; i < direct.num_groups(); ++i) {
      EXPECT_EQ(rolled.label(i), direct.label(i)) << specs[s].name;
      EXPECT_EQ(rolled.key(i).codes, direct.key(i).codes) << specs[s].name;
      for (size_t j = 0; j < direct.num_aggregates(); ++j) {
        const double d = direct.value(i, j);
        const double r = rolled.value(i, j);
        const std::string& lbl = direct.agg_labels()[j];
        if (lbl.rfind("COUNT", 0) == 0 || lbl.rfind("MEDIAN", 0) == 0) {
          // Counts are integers; a parent's median selects from the same
          // multiset whichever way it was assembled.
          EXPECT_EQ(r, d) << specs[s].name << " " << lbl << " "
                          << direct.label(i);
        } else {
          EXPECT_NEAR(r, d, 1e-9 * std::max(1.0, std::fabs(d)))
              << specs[s].name << " " << lbl << " " << direct.label(i);
        }
      }
    }
  }
}

class CubeExecTest : public testing::TestWithParam<int> {};

TEST_P(CubeExecTest, MatchesPerSpecExecution) {
  ScopedExecThreads threads(GetParam());
  ExpectCubeMatchesPerSpec(CubeTable(), CubeBase(/*filtered=*/false));
}

TEST_P(CubeExecTest, MatchesPerSpecExecutionFiltered) {
  ScopedExecThreads threads(GetParam());
  ExpectCubeMatchesPerSpec(CubeTable(), CubeBase(/*filtered=*/true));
}

TEST_P(CubeExecTest, MatchesPerSpecUnderForcedRadix) {
  ScopedRadixOverride radix(/*mode=*/1, /*partitions=*/8);
  ScopedExecThreads threads(GetParam());
  ExpectCubeMatchesPerSpec(CubeTable(), CubeBase(/*filtered=*/false));
}

TEST_P(CubeExecTest, MatchesPerSpecUnderForcedRadixFiltered) {
  // WHERE + forced radix: the masked selection accumulates through the
  // partition-owned slabs (dense byte mask, no chunk merge).
  ScopedRadixOverride radix(/*mode=*/1, /*partitions=*/8);
  ScopedExecThreads threads(GetParam());
  ExpectCubeMatchesPerSpec(CubeTable(), CubeBase(/*filtered=*/true));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CubeExecTest, testing::Values(1, 8));

// The rollup fan-out across grouping sets must be invisible in the output:
// every per-set result — labels, keys, and double values compared for
// bitwise equality, not tolerance — identical at every thread count, with
// and without a WHERE clause. Each coarser set reads the shared finest
// accumulation and rolls up independently in deterministic g-order, and
// the forced partition-owned build (fixed partition count) makes the
// finest accumulation itself thread-count-independent — unlike the
// chunk-merged path, whose chunk decomposition follows the thread count.
TEST(CubeExecTest, FanOutBitIdenticalAcrossThreadCounts) {
  ScopedRadixOverride radix(/*mode=*/1, /*partitions=*/8);
  for (const bool filtered : {false, true}) {
    const QuerySpec base = CubeBase(filtered);
    std::vector<QueryResult> serial = [&] {
      ScopedExecThreads one(1);
      return std::move(ExecuteCube(CubeTable(), base)).ValueOrDie();
    }();
    for (const int threads : {2, 3, 8}) {
      ScopedExecThreads scope(threads);
      ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> par,
                           ExecuteCube(CubeTable(), base));
      ASSERT_EQ(par.size(), serial.size());
      for (size_t s = 0; s < serial.size(); ++s) {
        ASSERT_EQ(par[s].num_groups(), serial[s].num_groups())
            << "threads=" << threads << " set " << s;
        for (size_t i = 0; i < serial[s].num_groups(); ++i) {
          ASSERT_EQ(par[s].label(i), serial[s].label(i));
          ASSERT_EQ(par[s].key(i).codes, serial[s].key(i).codes);
          for (size_t j = 0; j < serial[s].num_aggregates(); ++j) {
            ASSERT_EQ(par[s].value(i, j), serial[s].value(i, j))
                << "threads=" << threads << " set " << s << " group "
                << serial[s].label(i) << " agg " << j;
          }
        }
      }
    }
  }
}

TEST(CubeExecTest, EmptyGroupByFallsBackToSingleSpec) {
  QuerySpec base;
  base.aggregates = {AggSpec::Count()};
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> cube,
                       ExecuteCube(CubeTable(), base));
  ASSERT_EQ(cube.size(), 1u);
  ASSERT_EQ(cube[0].num_groups(), 1u);
  EXPECT_EQ(cube[0].value(0, 0), static_cast<double>(CubeTable().num_rows()));
}

TEST(CubeExecTest, EmptyTable) {
  OpenAqOptions opts;
  opts.num_rows = 0;
  Table empty = GenerateOpenAq(opts);
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> cube,
                       ExecuteCube(empty, CubeBase(false)));
  ASSERT_EQ(cube.size(), 8u);
  for (const auto& r : cube) EXPECT_EQ(r.num_groups(), 0u);
}

TEST(CubeExecTest, RejectsMissingAggregates) {
  QuerySpec base;
  base.group_by = {"country"};
  EXPECT_FALSE(ExecuteCube(CubeTable(), base).ok());
}

}  // namespace
}  // namespace cvopt
