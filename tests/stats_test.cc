// Tests for src/stats: RunningStats (incl. merge properties), GroupKey,
// GroupStatsTable, CollectGroupStats.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/core/stratification.h"
#include "src/stats/group_stats.h"
#include "src/stats/running_stats.h"
#include "src/stats/stats_collector.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance_population(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance_population(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance_sample(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance_population(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev_population(), 2.0);
  EXPECT_NEAR(s.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MatchesNaiveTwoPass) {
  Rng rng(3);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.UniformDouble(-100, 100);
  RunningStats s;
  for (double x : xs) s.Add(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double m2 = 0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance_population(), m2 / xs.size(), 1e-7);
}

TEST(RunningStatsTest, CvZeroMeanGuarded) {
  RunningStats s;
  s.Add(-1.0);
  s.Add(1.0);
  // mean == 0; the CV floor keeps the value finite.
  EXPECT_TRUE(std::isfinite(s.cv()));
  EXPECT_GT(s.cv(), 0.0);
}

// Property: merging a split of a stream equals processing the whole stream.
class MergeProperty : public testing::TestWithParam<size_t> {};

TEST_P(MergeProperty, MergeEqualsConcatenation) {
  const size_t split = GetParam();
  Rng rng(41 + split);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.UniformDouble(-5, 50);

  RunningStats whole, a, b;
  for (size_t i = 0; i < xs.size(); ++i) {
    whole.Add(xs[i]);
    (i < split ? a : b).Add(xs[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance_population(), whole.variance_population(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Splits, MergeProperty,
                         testing::Values(0, 1, 50, 100, 199, 200));

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats snapshot = a;
  a.Merge(b);  // merging empty is a no-op
  EXPECT_TRUE(a == snapshot);
  b.Merge(a);  // merging into empty copies
  EXPECT_TRUE(b == snapshot);
}

TEST(GroupKeyTest, EqualityAndHash) {
  GroupKey a{{1, 2}}, b{{1, 2}}, c{{2, 1}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  GroupKeyHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));
}

TEST(GroupKeyTest, RenderUsesDictionary) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(size_t major_idx, t.ColumnIndex("major"));
  ASSERT_OK_AND_ASSIGN(size_t age_idx, t.ColumnIndex("age"));
  GroupKey k{{t.column(major_idx).GetCode(0), 25}};
  EXPECT_EQ(k.Render(t, {major_idx, age_idx}), "CS|25");
}

TEST(GroupStatsTableTest, ShapeAndAccess) {
  GroupStatsTable g(3, 2);
  EXPECT_EQ(g.num_strata(), 3u);
  EXPECT_EQ(g.num_columns(), 2u);
  g.At(2, 1).Add(7.0);
  EXPECT_EQ(g.At(2, 1).count(), 1u);
  EXPECT_EQ(g.At(0, 0).count(), 0u);
}

TEST(GroupStatsTableTest, MergeRequiresSameShape) {
  GroupStatsTable a(2, 2), b(2, 3);
  EXPECT_FALSE(a.Merge(b).ok());
  GroupStatsTable c(2, 2);
  c.At(0, 0).Add(1.0);
  ASSERT_OK(a.Merge(c));
  EXPECT_EQ(a.At(0, 0).count(), 1u);
}

TEST(CollectGroupStatsTest, PerGroupMeansOnStudentTable) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"major"}));
  ASSERT_OK_AND_ASSIGN(const Column* gpa, t.ColumnByName("gpa"));
  StatSource src;
  src.column = gpa;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats, CollectGroupStats(strat, {src}));
  ASSERT_EQ(stats.num_strata(), 4u);
  // Find CS stratum and verify mean gpa (3.4 + 3.1)/2.
  for (size_t c = 0; c < strat.num_strata(); ++c) {
    if (strat.Label(c) == "CS") {
      EXPECT_DOUBLE_EQ(stats.At(c, 0).mean(), 3.25);
      EXPECT_EQ(stats.At(c, 0).count(), 2u);
    }
  }
}

TEST(CollectGroupStatsTest, ConstantOneSource) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"college"}));
  StatSource one;
  one.constant_one = true;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats, CollectGroupStats(strat, {one}));
  for (size_t c = 0; c < strat.num_strata(); ++c) {
    EXPECT_EQ(stats.At(c, 0).count(), 4u);
    EXPECT_DOUBLE_EQ(stats.At(c, 0).mean(), 1.0);
    EXPECT_DOUBLE_EQ(stats.At(c, 0).variance_population(), 0.0);
  }
}

TEST(CollectGroupStatsTest, IndicatorSource) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"college"}));
  // Indicator: age > 24.
  std::vector<uint8_t> ind(t.num_rows());
  ASSERT_OK_AND_ASSIGN(const Column* age, t.ColumnByName("age"));
  for (size_t r = 0; r < t.num_rows(); ++r) ind[r] = age->GetInt(r) > 24;
  StatSource src;
  src.indicator = &ind;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats, CollectGroupStats(strat, {src}));
  // Science: ages 25,22,24,28 -> 2 of 4. Engineering: 21,23,27,26 -> 2 of 4.
  for (size_t c = 0; c < strat.num_strata(); ++c) {
    EXPECT_DOUBLE_EQ(stats.At(c, 0).mean(), 0.5);
  }
}

TEST(CollectGroupStatsTest, RejectsInvalidSources) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"major"}));
  StatSource empty;  // no stream at all
  EXPECT_FALSE(CollectGroupStats(strat, {empty}).ok());

  std::vector<uint8_t> short_ind(3);
  StatSource bad_len;
  bad_len.indicator = &short_ind;
  EXPECT_FALSE(CollectGroupStats(strat, {bad_len}).ok());

  ASSERT_OK_AND_ASSIGN(const Column* major, t.ColumnByName("major"));
  StatSource str_col;
  str_col.column = major;
  EXPECT_FALSE(CollectGroupStats(strat, {str_col}).ok());
}

}  // namespace
}  // namespace cvopt
