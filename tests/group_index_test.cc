// Unit tests for the shared dense group-id pipeline: all three build tiers
// (direct remap, packed flat-hash, wide-key fallback), subset builds, the
// Resolve validation helper, and the GroupKeyInterner — plus a differential
// test against a naive unordered_map reference over randomized tables.
#include "src/exec/group_index.h"

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_map>

#include "src/table/table_builder.h"
#include "src/util/rng.h"
#include "src/util/simd.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

// Naive reference: first-seen dense ids via a node-based key map.
struct ReferenceIndex {
  std::vector<uint32_t> row_groups;
  std::vector<GroupKey> keys;
  std::vector<uint64_t> sizes;
};

ReferenceIndex NaiveIndex(const Table& table, const std::vector<size_t>& cols,
                          const std::vector<uint32_t>* rows) {
  ReferenceIndex out;
  std::unordered_map<GroupKey, uint32_t, GroupKeyHash> index;
  const size_t n = rows != nullptr ? rows->size() : table.num_rows();
  GroupKey key;
  key.codes.resize(cols.size());
  for (size_t i = 0; i < n; ++i) {
    const size_t r = rows != nullptr ? (*rows)[i] : i;
    for (size_t j = 0; j < cols.size(); ++j) {
      key.codes[j] = table.column(cols[j]).GroupCode(r);
    }
    auto [it, inserted] =
        index.try_emplace(key, static_cast<uint32_t>(out.keys.size()));
    if (inserted) {
      out.keys.push_back(key);
      out.sizes.push_back(0);
    }
    out.row_groups.push_back(it->second);
    out.sizes[it->second]++;
  }
  return out;
}

void ExpectMatchesReference(const GroupIndex& gidx, const ReferenceIndex& ref) {
  ASSERT_EQ(gidx.num_groups(), ref.keys.size());
  ASSERT_EQ(gidx.row_groups().size(), ref.row_groups.size());
  // First-seen id assignment must agree exactly, not just up to relabeling.
  EXPECT_EQ(gidx.row_groups(), ref.row_groups);
  for (size_t g = 0; g < gidx.num_groups(); ++g) {
    EXPECT_EQ(gidx.KeyOf(g), ref.keys[g]) << "group " << g;
    EXPECT_EQ(gidx.sizes()[g], ref.sizes[g]) << "group " << g;
  }
}

Table MakeTypedTable(const std::vector<int64_t>& small_ints,
                     const std::vector<int64_t>& wide_ints,
                     const std::vector<std::string>& strings) {
  Schema schema({{"s", DataType::kString},
                 {"i", DataType::kInt64},
                 {"w", DataType::kInt64},
                 {"d", DataType::kDouble}});
  TableBuilder b(schema);
  for (size_t r = 0; r < strings.size(); ++r) {
    Status st = b.AppendRow({Value(strings[r]), Value(small_ints[r]),
                             Value(wide_ints[r]), Value(0.5)});
    CVOPT_CHECK(st.ok(), "append failed");
  }
  return std::move(b).Finish();
}

TEST(GroupIndexTest, SingleStringColumnIsDirectTier) {
  Table t = MakeTypedTable({1, 2, 3, 4, 5}, {0, 0, 0, 0, 0},
                           {"b", "a", "b", "c", "a"});
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {"s"}));
  EXPECT_EQ(gidx.tier(), GroupIndex::Tier::kDirect);
  ASSERT_EQ(gidx.num_groups(), 3u);
  // First-seen order: b, a, c.
  EXPECT_EQ(gidx.row_groups(), (std::vector<uint32_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(gidx.sizes(), (std::vector<uint64_t>{2, 2, 1}));
  EXPECT_EQ(gidx.Label(0), "b");
  EXPECT_EQ(gidx.Label(1), "a");
  EXPECT_EQ(gidx.Label(2), "c");
}

TEST(GroupIndexTest, SingleSmallIntColumnIsDirectTier) {
  // Negative values exercise the min-rebasing of the remap array.
  Table t = MakeTypedTable({-7, 3, -7, 100, 3}, {0, 0, 0, 0, 0},
                           {"x", "x", "x", "x", "x"});
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {"i"}));
  EXPECT_EQ(gidx.tier(), GroupIndex::Tier::kDirect);
  ASSERT_EQ(gidx.num_groups(), 3u);
  EXPECT_EQ(gidx.row_groups(), (std::vector<uint32_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(gidx.KeyOf(0), (GroupKey{{-7}}));
  EXPECT_EQ(gidx.KeyOf(2), (GroupKey{{100}}));
}

TEST(GroupIndexTest, SingleWideIntColumnFallsToPackedHash) {
  // Spread > 2^22 forces the flat-hash tier; a single int always packs.
  const int64_t big = int64_t{1} << 30;
  Table t = MakeTypedTable({0, big, 0, -big, big}, {0, 0, 0, 0, 0},
                           {"x", "x", "x", "x", "x"});
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {"i"}));
  EXPECT_EQ(gidx.tier(), GroupIndex::Tier::kPacked);
  ASSERT_EQ(gidx.num_groups(), 3u);
  EXPECT_EQ(gidx.row_groups(), (std::vector<uint32_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(gidx.sizes(), (std::vector<uint64_t>{2, 2, 1}));
}

TEST(GroupIndexTest, SmallRowCountOverMidDomainAvoidsDirectRemap) {
  // 5 rows over a ~100k-spread int: the code domain would fit the direct
  // tier's bit budget, but a dense remap dwarfs the mapped row count, so
  // the flat-hash tier must take over.
  Table t = MakeTypedTable({0, 100000, 0, 55555, 100000}, {0, 0, 0, 0, 0},
                           {"x", "x", "x", "x", "x"});
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {"i"}));
  EXPECT_EQ(gidx.tier(), GroupIndex::Tier::kPacked);
  EXPECT_EQ(gidx.row_groups(), (std::vector<uint32_t>{0, 1, 0, 2, 1}));
}

TEST(GroupIndexTest, MultiColumnSmallDomainsAreDirectTier) {
  Table t = MakeTypedTable({0, 1, 0, 1, 0}, {0, 0, 0, 0, 0},
                           {"a", "a", "b", "b", "a"});
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {"s", "i"}));
  EXPECT_EQ(gidx.tier(), GroupIndex::Tier::kDirect);
  ASSERT_EQ(gidx.num_groups(), 4u);
  EXPECT_EQ(gidx.row_groups(), (std::vector<uint32_t>{0, 1, 2, 3, 0}));
  EXPECT_EQ(gidx.KeyOf(1), (GroupKey{{0, 1}}));  // code of "a", int 1
}

TEST(GroupIndexTest, MultiColumnPackableIsPackedTier) {
  const int64_t big = int64_t{1} << 30;  // ~31 bits + string bits <= 64
  Table t = MakeTypedTable({0, 0, 0, 0, 0}, {0, big, 0, 7, big},
                           {"a", "a", "b", "b", "a"});
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {"s", "w"}));
  EXPECT_EQ(gidx.tier(), GroupIndex::Tier::kPacked);
  ExpectMatchesReference(gidx, NaiveIndex(t, {0, 2}, nullptr));
}

TEST(GroupIndexTest, UnpackableKeysFallToWideTier) {
  // Two columns each spanning ~2^41 cannot bit-pack into 64 bits.
  const int64_t huge = int64_t{1} << 40;
  Table t = MakeTypedTable({0, 3 * huge, -huge, 0, 3 * huge},
                           {-2 * huge, huge, 0, -2 * huge, huge},
                           {"x", "x", "x", "x", "x"});
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {"i", "w"}));
  EXPECT_EQ(gidx.tier(), GroupIndex::Tier::kWide);
  ASSERT_EQ(gidx.num_groups(), 3u);
  EXPECT_EQ(gidx.row_groups(), (std::vector<uint32_t>{0, 1, 2, 0, 1}));
  EXPECT_EQ(gidx.KeyOf(0), (GroupKey{{0, -2 * huge}}));
}

TEST(GroupIndexTest, EmptyAttrsYieldSingleGroup) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {}));
  ASSERT_EQ(gidx.num_groups(), 1u);
  EXPECT_EQ(gidx.sizes()[0], t.num_rows());
  EXPECT_TRUE(gidx.KeyOf(0).codes.empty());
}

TEST(GroupIndexTest, ResolveRejectsDoubleColumns) {
  Table t = MakeStudentTable();
  EXPECT_FALSE(GroupIndex::Build(t, {"gpa"}).ok());
  EXPECT_FALSE(GroupIndex::Build(t, {"major", "gpa"}).ok());
  EXPECT_FALSE(GroupIndex::Build(t, {"nope"}).ok());
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> cols,
                       GroupIndex::Resolve(t, {"major", "age"}));
  EXPECT_EQ(cols, (std::vector<size_t>{4, 1}));
}

TEST(GroupIndexTest, BuildForRowsMapsOnlyOccurringGroups) {
  Table t = MakeStudentTable();  // majors: CS CS Math Math EE EE ME ME
  const std::vector<uint32_t> rows = {6, 2, 7, 3};
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx,
                       GroupIndex::BuildForRows(t, {"major"}, rows));
  ASSERT_EQ(gidx.num_groups(), 2u);  // only ME and Math occur in the subset
  EXPECT_EQ(gidx.row_groups(), (std::vector<uint32_t>{0, 1, 0, 1}));
  EXPECT_EQ(gidx.Label(0), "ME");
  EXPECT_EQ(gidx.Label(1), "Math");
  EXPECT_EQ(gidx.sizes(), (std::vector<uint64_t>{2, 2}));
}

TEST(GroupIndexTest, BuildForRowsEmptySubset) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::BuildForRows(t, {"major"}, {}));
  EXPECT_EQ(gidx.num_groups(), 0u);
  EXPECT_TRUE(gidx.row_groups().empty());
}

// Randomized differential: every tier must reproduce the naive map exactly
// (ids, first-seen order, sizes, keys) on tables mixing strings, small ints,
// and wide ints, over full builds and random subsets.
class GroupIndexFuzz : public testing::TestWithParam<int> {};

TEST_P(GroupIndexFuzz, MatchesNaiveReference) {
  Rng rng(3100 + GetParam());
  const size_t n = 300 + rng.Uniform(300);
  std::vector<int64_t> small(n), wide(n);
  std::vector<std::string> strs(n);
  const char* names[] = {"aa", "bb", "cc", "dd", "ee", "ff", "gg"};
  for (size_t r = 0; r < n; ++r) {
    small[r] = static_cast<int64_t>(rng.Uniform(25)) - 12;
    // Wide values: a few clusters scattered over +/- 2^40.
    wide[r] = (static_cast<int64_t>(rng.Uniform(7)) - 3) * (int64_t{1} << 40) +
              static_cast<int64_t>(rng.Uniform(3));
    strs[r] = names[rng.Uniform(7)];
  }
  Table t = MakeTypedTable(small, wide, strs);

  // {"w", "w"} repeats the ~43-bit column so the packed budget overflows,
  // exercising the wide tier alongside direct and packed.
  const std::vector<std::vector<std::string>> attr_sets = {
      {"s"},      {"i"},      {"w"},           {"s", "i"},
      {"s", "w"}, {"i", "w"}, {"s", "i", "w"}, {"w", "i", "s"},
      {"w", "w"}, {"w", "w", "s"}};
  for (const auto& attrs : attr_sets) {
    ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, attrs));
    ASSERT_OK_AND_ASSIGN(std::vector<size_t> cols, GroupIndex::Resolve(t, attrs));
    ExpectMatchesReference(gidx, NaiveIndex(t, cols, nullptr));

    // Random subset build (with repeats).
    std::vector<uint32_t> rows;
    for (size_t i = 0; i < n / 2; ++i) {
      rows.push_back(static_cast<uint32_t>(rng.Uniform(n)));
    }
    ASSERT_OK_AND_ASSIGN(GroupIndex sub, GroupIndex::BuildForRows(t, attrs, rows));
    ExpectMatchesReference(sub, NaiveIndex(t, cols, &rows));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupIndexFuzz, testing::Range(0, 5));

// The radix-partitioned build must reproduce the naive reference exactly
// (ids in first-seen order, sizes, keys) for every tier, partition count —
// including the P=1 single-partition edge and P far above the group count
// (empty partitions) — and thread count, over full and subset builds.
class RadixBuildFuzz : public testing::TestWithParam<int> {};

TEST_P(RadixBuildFuzz, ForcedRadixMatchesNaiveReference) {
  Rng rng(8800 + GetParam());
  const size_t n = 400 + rng.Uniform(400);
  std::vector<int64_t> small(n), wide(n);
  std::vector<std::string> strs(n);
  const char* names[] = {"aa", "bb", "cc", "dd", "ee", "ff", "gg"};
  for (size_t r = 0; r < n; ++r) {
    small[r] = static_cast<int64_t>(rng.Uniform(25)) - 12;
    wide[r] = (static_cast<int64_t>(rng.Uniform(9)) - 4) * (int64_t{1} << 40) +
              static_cast<int64_t>(rng.Uniform(5));
    strs[r] = names[rng.Uniform(7)];
  }
  Table t = MakeTypedTable(small, wide, strs);

  // Covers all three tiers: direct ({"s"}, {"s","i"}), packed ({"s","w"},
  // {"i","w"}), wide ({"w","w"}, {"w","w","s"}).
  const std::vector<std::vector<std::string>> attr_sets = {
      {"s"}, {"s", "i"}, {"s", "w"}, {"i", "w"}, {"w", "w"}, {"w", "w", "s"}};
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < n / 2; ++i) {
    rows.push_back(static_cast<uint32_t>(rng.Uniform(n)));
  }
  for (const size_t partitions : {size_t{1}, size_t{2}, size_t{8}, size_t{64}}) {
    ScopedRadixOverride radix(/*mode=*/1, partitions);
    for (const int threads : {1, 2, 3, 8}) {
      ScopedExecThreads scope(threads, /*grain=*/64);
      for (const auto& attrs : attr_sets) {
        ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, attrs));
        ASSERT_OK_AND_ASSIGN(std::vector<size_t> cols,
                             GroupIndex::Resolve(t, attrs));
        ASSERT_NE(gidx.partitions(), nullptr);
        ExpectMatchesReference(gidx, NaiveIndex(t, cols, nullptr));

        ASSERT_OK_AND_ASSIGN(GroupIndex sub,
                             GroupIndex::BuildForRows(t, attrs, rows));
        ExpectMatchesReference(sub, NaiveIndex(t, cols, &rows));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixBuildFuzz, testing::Range(0, 3));

TEST(RadixBuildTest, PartitionArtifactIsConsistent) {
  // The artifact must tile the mapped positions exactly: every position in
  // one partition, ascending within it, local ids consistent with the
  // global mapping, and partition-owned global id sets disjoint.
  Rng rng(515);
  const size_t n = 3000;
  std::vector<int64_t> small(n), wide(n);
  std::vector<std::string> strs(n);
  for (size_t r = 0; r < n; ++r) {
    small[r] = static_cast<int64_t>(rng.Uniform(600));
    wide[r] = static_cast<int64_t>(rng.Uniform(1u << 30));
    strs[r] = "s" + std::to_string(rng.Uniform(50));
  }
  Table t = MakeTypedTable(small, wide, strs);
  ScopedRadixOverride radix(/*mode=*/1, /*partitions=*/8);
  ASSERT_OK_AND_ASSIGN(GroupIndex gidx, GroupIndex::Build(t, {"s", "i", "w"}));
  const auto& gp = gidx.partitions();
  ASSERT_NE(gp, nullptr);
  EXPECT_EQ(gp->num_partitions(), 8u);
  EXPECT_EQ(gp->part_rows.size(), n);
  EXPECT_EQ(gp->part_local.size(), n);
  EXPECT_EQ(gp->local_to_global.size(), gidx.num_groups());
  std::vector<int> seen_pos(n, 0);
  std::vector<int> seen_group(gidx.num_groups(), 0);
  for (size_t p = 0; p < gp->num_partitions(); ++p) {
    for (size_t g = 0; g < gp->num_groups_in(p); ++g) {
      const uint32_t global = gp->local_to_global[gp->group_base[p] + g];
      EXPECT_EQ(seen_group[global]++, 0) << "global id owned twice";
    }
    for (size_t k = gp->part_base[p]; k < gp->part_base[p + 1]; ++k) {
      const uint32_t pos = gp->part_rows[k];
      EXPECT_EQ(seen_pos[pos]++, 0) << "position scattered twice";
      if (k > gp->part_base[p]) EXPECT_LT(gp->part_rows[k - 1], pos);
      // Local id agrees with the global row->group mapping.
      EXPECT_EQ(gp->local_to_global[gp->group_base[p] + gp->part_local[k]],
                gidx.group_of(pos));
    }
  }
  EXPECT_EQ(std::count(seen_pos.begin(), seen_pos.end(), 1),
            static_cast<long>(n));
}

TEST(RadixBuildTest, AutoHeuristicEngagesOnHugeCardinality) {
  // A ~100k-group int key over 2^30 spread (packed tier) at n >= 65536:
  // the automatic path must engage when parallel and stay off serially —
  // with bit-identical ids either way.
  Schema schema({{"k", DataType::kInt64}});
  TableBuilder b(schema);
  Rng rng(99);
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_OK(b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(1u << 30)))}));
  }
  Table t = std::move(b).Finish();
  GroupIndex serial = [&] {
    ScopedExecThreads one(1);
    return std::move(GroupIndex::Build(t, {"k"})).ValueOrDie();
  }();
  EXPECT_EQ(serial.partitions(), nullptr);  // serial: radix never engages
  ScopedExecThreads threads(4);
  ASSERT_OK_AND_ASSIGN(GroupIndex par, GroupIndex::Build(t, {"k"}));
  EXPECT_EQ(par.tier(), GroupIndex::Tier::kPacked);
  ASSERT_NE(par.partitions(), nullptr);
  EXPECT_EQ(par.row_groups(), serial.row_groups());
  EXPECT_EQ(par.sizes(), serial.sizes());
}

// --------------------------------------------- SIMD-vs-scalar parity

// The batched packed probe (8-lane hash mix + slot prefetch) must leave no
// trace in the output: builds with the vector backend forced off and on
// assign bit-identical first-seen ids, sizes, and keys across every tier,
// the forced-radix path, and subset builds. On hosts without a vector
// backend both passes are scalar.
class GroupBuildSimdParityFuzz : public testing::TestWithParam<int> {};

TEST_P(GroupBuildSimdParityFuzz, BuildsBitIdenticalScalarVsVector) {
  Rng rng(6600 + GetParam());
  const size_t n = 500 + rng.Uniform(400);
  std::vector<int64_t> small(n), wide(n);
  std::vector<std::string> strs(n);
  const char* names[] = {"aa", "bb", "cc", "dd", "ee", "ff", "gg"};
  for (size_t r = 0; r < n; ++r) {
    small[r] = static_cast<int64_t>(rng.Uniform(25)) - 12;
    wide[r] = (static_cast<int64_t>(rng.Uniform(9)) - 4) * (int64_t{1} << 40) +
              static_cast<int64_t>(rng.Uniform(5));
    strs[r] = names[rng.Uniform(7)];
  }
  Table t = MakeTypedTable(small, wide, strs);
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < n / 2; ++i) {
    rows.push_back(static_cast<uint32_t>(rng.Uniform(n)));
  }
  const std::vector<std::vector<std::string>> attr_sets = {
      {"s"}, {"s", "i"}, {"s", "w"}, {"i", "w"}, {"w", "w"}};
  for (const int radix_mode : {0, 1}) {
    ScopedRadixOverride radix(radix_mode, /*partitions=*/radix_mode ? 8 : 0);
    for (const auto& attrs : attr_sets) {
      simd::SetEnabledForTesting(0);
      ASSERT_OK_AND_ASSIGN(GroupIndex scalar, GroupIndex::Build(t, attrs));
      ASSERT_OK_AND_ASSIGN(GroupIndex scalar_sub,
                           GroupIndex::BuildForRows(t, attrs, rows));
      simd::SetEnabledForTesting(1);
      ASSERT_OK_AND_ASSIGN(GroupIndex vec, GroupIndex::Build(t, attrs));
      ASSERT_OK_AND_ASSIGN(GroupIndex vec_sub,
                           GroupIndex::BuildForRows(t, attrs, rows));
      EXPECT_EQ(vec.row_groups(), scalar.row_groups());
      EXPECT_EQ(vec.sizes(), scalar.sizes());
      EXPECT_EQ(vec_sub.row_groups(), scalar_sub.row_groups());
      EXPECT_EQ(vec_sub.sizes(), scalar_sub.sizes());
      for (size_t g = 0; g < vec.num_groups(); ++g) {
        ASSERT_EQ(vec.KeyOf(g), scalar.KeyOf(g)) << "group " << g;
      }
    }
  }
  simd::SetEnabledForTesting(1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupBuildSimdParityFuzz, testing::Range(0, 4));

// RouteBatch must be observationally identical to per-row Route — same ids
// in the same order, same group count and keys — including mid-stream field
// widening (values that outgrow their packed field) and the wide-tier
// fallback (keys that cannot pack at all), at batch boundaries that leave
// ragged tails, with the vector backend both off and on.
class RouterBatchParityFuzz : public testing::TestWithParam<int> {};

TEST_P(RouterBatchParityFuzz, RouteBatchMatchesPerRowRoute) {
  Rng rng(7700 + GetParam());
  const size_t n = 700 + rng.Uniform(300);
  std::vector<int64_t> small(n), wide(n);
  std::vector<std::string> strs(n);
  const char* names[] = {"aa", "bb", "cc", "dd", "ee"};
  for (size_t r = 0; r < n; ++r) {
    // Growing magnitudes force Widen mid-stream; occasional huge values
    // push the composite key past 64 bits into the wide tier.
    const int64_t mag = int64_t{1} << rng.Uniform(r < n / 2 ? 20 : 44);
    small[r] = static_cast<int64_t>(rng.Uniform(9)) - 4;
    wide[r] = (rng.NextBernoulli(0.5) ? -1 : 1) * (mag + static_cast<int64_t>(rng.Uniform(3)));
    strs[r] = names[rng.Uniform(5)];
  }
  Table t = MakeTypedTable(small, wide, strs);
  const std::vector<std::vector<std::string>> attr_sets = {
      {"s"}, {"i", "w"}, {"s", "i", "w"}, {"w", "w"}, {}};
  for (const int simd_mode : {0, 1}) {
    simd::SetEnabledForTesting(simd_mode);
    for (const auto& attrs : attr_sets) {
      ASSERT_OK_AND_ASSIGN(std::vector<size_t> cols,
                           GroupIndex::Resolve(t, attrs));
      StreamGroupRouter serial(&t, cols);
      StreamGroupRouter batched(&t, cols);
      std::vector<uint32_t> want(n), got(n);
      for (size_t r = 0; r < n; ++r) {
        want[r] = serial.Route(static_cast<uint32_t>(r));
      }
      // Uneven blocks exercise full 8-row batches and ragged tails.
      std::vector<uint32_t> ids(n);
      std::iota(ids.begin(), ids.end(), 0u);
      size_t lo = 0;
      while (lo < n) {
        const size_t len = std::min<size_t>(n - lo, 1 + rng.Uniform(37));
        batched.RouteBatch(ids.data() + lo, len, got.data() + lo);
        lo += len;
      }
      EXPECT_EQ(got, want);
      ASSERT_EQ(batched.num_groups(), serial.num_groups());
      EXPECT_EQ(batched.packed(), serial.packed());
      for (size_t g = 0; g < serial.num_groups(); ++g) {
        ASSERT_EQ(batched.KeyOf(g), serial.KeyOf(g)) << "group " << g;
      }
    }
  }
  simd::SetEnabledForTesting(1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterBatchParityFuzz, testing::Range(0, 4));

TEST(GroupKeyInternerTest, AssignsDenseFirstSeenIds) {
  GroupKeyInterner interner;
  EXPECT_EQ(interner.Intern(GroupKey{{1, 2}}), 0u);
  EXPECT_EQ(interner.Intern(GroupKey{{2, 1}}), 1u);
  EXPECT_EQ(interner.Intern(GroupKey{{1, 2}}), 0u);
  EXPECT_EQ(interner.Intern(GroupKey{{}}), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.keys()[1], (GroupKey{{2, 1}}));
}

TEST(GroupKeyInternerTest, SurvivesGrowth) {
  GroupKeyInterner interner(4);
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(interner.Intern(GroupKey{{i, -i}}), static_cast<uint32_t>(i));
  }
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(interner.Intern(GroupKey{{i, -i}}), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(interner.size(), 5000u);
}

}  // namespace
}  // namespace cvopt
