// Differential fuzz tests: random predicates and random group-by queries
// evaluated both by the engine and by deliberately-naive row-at-a-time
// reference implementations. Any divergence is a bug in the vectorized
// paths (mask combination, dictionary short-cuts, accumulator math).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "src/exec/group_by_executor.h"
#include "src/expr/predicate.h"
#include "src/util/string_util.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

// A table with enough type variety to exercise every predicate path.
Table MakeFuzzTable(uint64_t seed, size_t rows) {
  Schema schema({{"cat", DataType::kString},
                 {"sub", DataType::kString},
                 {"num", DataType::kInt64},
                 {"val", DataType::kDouble}});
  TableBuilder b(schema);
  Rng rng(seed);
  const char* cats[] = {"a", "b", "c", "dd", "e"};
  const char* subs[] = {"x", "y", "z"};
  for (size_t i = 0; i < rows; ++i) {
    Status st = b.AppendRow(
        {Value(cats[rng.Uniform(5)]), Value(subs[rng.Uniform(3)]),
         Value(static_cast<int64_t>(rng.Uniform(20)) - 5),
         Value(rng.UniformDouble(-10, 10))});
    CVOPT_CHECK(st.ok(), "append failed");
  }
  return std::move(b).Finish();
}

// Random predicate generator over the fuzz table's columns.
PredicatePtr RandomPredicate(Rng* rng, int depth) {
  const char* cats[] = {"a", "b", "c", "dd", "e", "zz"};  // zz never occurs
  if (depth > 0 && rng->NextDouble() < 0.4) {
    switch (rng->Uniform(3)) {
      case 0:
        return Predicate::And(RandomPredicate(rng, depth - 1),
                              RandomPredicate(rng, depth - 1));
      case 1:
        return Predicate::Or(RandomPredicate(rng, depth - 1),
                             RandomPredicate(rng, depth - 1));
      default:
        return Predicate::Not(RandomPredicate(rng, depth - 1));
    }
  }
  switch (rng->Uniform(6)) {
    case 0:
      return Predicate::Compare(
          "cat", rng->NextBernoulli(0.5) ? CompareOp::kEq : CompareOp::kNe,
          cats[rng->Uniform(6)]);
    case 1: {
      const CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                               CompareOp::kGe, CompareOp::kEq, CompareOp::kNe};
      return Predicate::Compare("num", ops[rng->Uniform(6)],
                                static_cast<int64_t>(rng->Uniform(20)) - 5);
    }
    case 2: {
      const CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                               CompareOp::kGe};
      return Predicate::Compare("val", ops[rng->Uniform(4)],
                                rng->UniformDouble(-10, 10));
    }
    case 3: {
      const int64_t lo = static_cast<int64_t>(rng->Uniform(15)) - 5;
      return Predicate::Between("num", lo,
                                lo + static_cast<int64_t>(rng->Uniform(8)));
    }
    case 4: {
      const double lo = rng->UniformDouble(-10, 5);
      return Predicate::Between("val", lo, lo + rng->UniformDouble(0, 8));
    }
    default: {
      std::vector<Value> in;
      const size_t n = 1 + rng->Uniform(3);
      for (size_t i = 0; i < n; ++i) in.push_back(Value(cats[rng->Uniform(6)]));
      return Predicate::In("cat", std::move(in));
    }
  }
}

class PredicateFuzz : public testing::TestWithParam<int> {};

TEST_P(PredicateFuzz, VectorizedMatchesScalar) {
  Table t = MakeFuzzTable(900 + GetParam(), 500);
  Rng rng(1700 + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    PredicatePtr p = RandomPredicate(&rng, 3);
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> mask, p->Evaluate(t));
    ASSERT_EQ(mask.size(), t.num_rows());
    // Scalar re-evaluation of every 7th row (keeps runtime bounded).
    for (size_t r = 0; r < t.num_rows(); r += 7) {
      ASSERT_OK_AND_ASSIGN(bool scalar, p->Matches(t, r));
      EXPECT_EQ(scalar, mask[r] != 0)
          << "row " << r << " predicate " << p->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateFuzz, testing::Range(0, 6));

// Naive reference group-by: row-at-a-time, string-keyed, straightforward
// accumulators.
std::map<std::string, std::vector<double>> NaiveGroupBy(const Table& t,
                                                        const QuerySpec& q) {
  std::map<std::string, std::vector<double>> out;  // label -> [sum..] etc.
  std::map<std::string, std::vector<std::vector<double>>> values;
  std::vector<size_t> gcols;
  for (const auto& a : q.group_by) {
    gcols.push_back(std::move(t.ColumnIndex(a)).ValueOrDie());
  }
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (q.where != nullptr) {
      bool keep = std::move(q.where->Matches(t, r)).ValueOrDie();
      if (!keep) continue;
    }
    std::vector<std::string> parts;
    for (size_t c : gcols) parts.push_back(t.column(c).GetValue(r).ToString());
    const std::string label = Join(parts, "|");
    auto& vals = values[label];
    vals.resize(q.aggregates.size());
    for (size_t j = 0; j < q.aggregates.size(); ++j) {
      const AggSpec& agg = q.aggregates[j];
      double v = 1.0;
      if (agg.func == AggFunc::kCountIf) {
        v = std::move(agg.filter->Matches(t, r)).ValueOrDie() ? 1.0 : 0.0;
      } else if (agg.func != AggFunc::kCount) {
        v = std::move(t.ColumnByName(agg.column)).ValueOrDie()->GetDouble(r);
      }
      vals[j].push_back(v);
    }
  }
  for (auto& [label, vals] : values) {
    std::vector<double> finals(q.aggregates.size());
    for (size_t j = 0; j < q.aggregates.size(); ++j) {
      const auto& vs = vals[j];
      double sum = 0;
      for (double v : vs) sum += v;
      switch (q.aggregates[j].func) {
        case AggFunc::kAvg:
          finals[j] = vs.empty() ? 0 : sum / vs.size();
          break;
        case AggFunc::kVariance: {
          const double mean = vs.empty() ? 0 : sum / vs.size();
          double m2 = 0;
          for (double v : vs) m2 += (v - mean) * (v - mean);
          finals[j] = vs.empty() ? 0 : m2 / vs.size();
          break;
        }
        case AggFunc::kMedian: {
          // Straightforward sort-based median with the midpoint convention
          // for even counts, matching the engine's contract.
          std::vector<double> sorted = vs;
          std::sort(sorted.begin(), sorted.end());
          const size_t mid = sorted.size() / 2;
          if (sorted.empty()) {
            finals[j] = 0;
          } else if (sorted.size() % 2 == 1) {
            finals[j] = sorted[mid];
          } else {
            finals[j] = (sorted[mid - 1] + sorted[mid]) / 2.0;
          }
          break;
        }
        default:
          finals[j] = sum;  // SUM, COUNT, COUNT_IF
          break;
      }
    }
    out[label] = std::move(finals);
  }
  return out;
}

class GroupByFuzz : public testing::TestWithParam<int> {};

TEST_P(GroupByFuzz, EngineMatchesNaiveReference) {
  Table t = MakeFuzzTable(4200 + GetParam(), 400);
  Rng rng(5200 + GetParam());
  const std::vector<std::vector<std::string>> groupings = {
      {},           {"cat"},        {"sub"},
      {"num"},      {"cat", "sub"}, {"cat", "num"},
      {"sub", "num"}, {"cat", "sub", "num"}};
  for (int trial = 0; trial < 10; ++trial) {
    QuerySpec q;
    q.group_by = groupings[rng.Uniform(groupings.size())];
    // 1-3 random aggregates.
    const size_t naggs = 1 + rng.Uniform(3);
    for (size_t j = 0; j < naggs; ++j) {
      switch (rng.Uniform(6)) {
        case 0:
          q.aggregates.push_back(AggSpec::Avg("val"));
          break;
        case 1:
          q.aggregates.push_back(AggSpec::Sum("num"));
          break;
        case 2:
          q.aggregates.push_back(AggSpec::Count());
          break;
        case 3:
          q.aggregates.push_back(AggSpec::CountIf(RandomPredicate(&rng, 1)));
          break;
        case 4:
          q.aggregates.push_back(AggSpec::Median("val"));
          break;
        default:
          q.aggregates.push_back(AggSpec::Variance("val"));
          break;
      }
    }
    if (rng.NextBernoulli(0.6)) q.where = RandomPredicate(&rng, 2);

    ASSERT_OK_AND_ASSIGN(QueryResult engine, ExecuteExact(t, q));
    const auto naive = NaiveGroupBy(t, q);
    ASSERT_EQ(engine.num_groups(), naive.size()) << q.ToString();
    for (size_t i = 0; i < engine.num_groups(); ++i) {
      auto it = naive.find(engine.label(i));
      ASSERT_NE(it, naive.end()) << engine.label(i) << " " << q.ToString();
      for (size_t j = 0; j < q.aggregates.size(); ++j) {
        EXPECT_NEAR(engine.value(i, j), it->second[j],
                    1e-7 * std::max(1.0, std::fabs(it->second[j])))
            << q.ToString() << " group " << engine.label(i) << " agg " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupByFuzz, testing::Range(0, 6));

}  // namespace
}  // namespace cvopt
