// Tests for the sampling methods: budget adherence, weight calibration,
// stratum coverage, and each baseline's characteristic behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "src/sample/congress_sampler.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/rl_sampler.h"
#include "src/sample/sample_seek_sampler.h"
#include "src/sample/senate_sampler.h"
#include "src/sample/uniform_sampler.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

QuerySpec SkewedQuery() {
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v")};
  return q;
}

double WeightSum(const StratifiedSample& s) {
  return std::accumulate(s.weights().begin(), s.weights().end(), 0.0);
}

class AllSamplersTest : public testing::TestWithParam<int> {
 protected:
  const Sampler& sampler() const {
    static UniformSampler uniform;
    static SenateSampler senate;
    static CongressSampler congress;
    static RlSampler rl;
    static SampleSeekSampler seek;
    static CvoptSampler cvopt;
    switch (GetParam()) {
      case 0: return uniform;
      case 1: return senate;
      case 2: return congress;
      case 3: return rl;
      case 4: return seek;
      default: return cvopt;
    }
  }
};

TEST_P(AllSamplersTest, RespectsBudgetApproximately) {
  Table t = MakeSkewedTable(10, 200);
  Rng rng(11);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       sampler().Build(t, {SkewedQuery()}, 500, &rng));
  EXPECT_LE(s.size(), 510u);  // tiny slack for per-stratum minimums
  EXPECT_GE(s.size(), 400u);
}

TEST_P(AllSamplersTest, WeightsExpandToPopulation) {
  // Sum of HT weights estimates the table size for every design.
  Table t = MakeSkewedTable(8, 100);
  Rng rng(13);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       sampler().Build(t, {SkewedQuery()}, 600, &rng));
  EXPECT_NEAR(WeightSum(s), static_cast<double>(t.num_rows()),
              0.15 * t.num_rows())
      << sampler().name();
}

TEST_P(AllSamplersTest, RowsAreValid) {
  Table t = MakeSkewedTable(5, 50);
  Rng rng(17);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       sampler().Build(t, {SkewedQuery()}, 100, &rng));
  for (uint32_t r : s.rows()) EXPECT_LT(r, t.num_rows());
  for (double w : s.weights()) EXPECT_GT(w, 0.0);
  EXPECT_EQ(s.rows().size(), s.weights().size());
}

std::string SamplerCaseName(const testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Uniform", "Senate",     "Congress",
                                 "RL",      "SampleSeek", "Cvopt"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Methods, AllSamplersTest, testing::Range(0, 6),
                         SamplerCaseName);

TEST(UniformSamplerTest, ExactBudgetWithoutReplacement) {
  Table t = MakeSkewedTable(4, 100);
  Rng rng(19);
  UniformSampler u;
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, u.Build(t, {}, 137, &rng));
  EXPECT_EQ(s.size(), 137u);
  std::set<uint32_t> distinct(s.rows().begin(), s.rows().end());
  EXPECT_EQ(distinct.size(), 137u);
  // Uniform weights: all equal to N / M.
  for (double w : s.weights()) {
    EXPECT_DOUBLE_EQ(w, static_cast<double>(t.num_rows()) / 137.0);
  }
}

TEST(UniformSamplerTest, BudgetAboveTableTakesAll) {
  Table t = MakeSkewedTable(2, 10);
  Rng rng(23);
  UniformSampler u;
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, u.Build(t, {}, 10000, &rng));
  EXPECT_EQ(s.size(), t.num_rows());
}

TEST(SenateSamplerTest, EqualAllocationAcrossStrata) {
  Table t = MakeSkewedTable(5, 200);  // sizes 200..1000
  Rng rng(29);
  SenateSampler senate;
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       senate.Build(t, {SkewedQuery()}, 500, &rng));
  // Count per stratum: all should be ~100.
  ASSERT_NE(s.stratification(), nullptr);
  std::vector<int> per(s.stratification()->num_strata(), 0);
  for (uint32_t r : s.rows()) per[s.stratification()->StratumOfRow(r)]++;
  for (int c : per) EXPECT_EQ(c, 100);
}

TEST(EqualAllocationTest, RedistributesCappedLeftovers) {
  // caps {10, 1000, 1000}, budget 300: stratum 0 saturates at 10 and its
  // leftover flows to the others.
  std::vector<uint64_t> out = EqualAllocation({10, 1000, 1000}, 300);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1] + out[2], 290u);
  EXPECT_EQ(std::abs(static_cast<int>(out[1]) - static_cast<int>(out[2])), 0);
}

TEST(EqualAllocationTest, BudgetBeyondCapacity) {
  std::vector<uint64_t> out = EqualAllocation({5, 5}, 100);
  EXPECT_EQ(out[0], 5u);
  EXPECT_EQ(out[1], 5u);
}

TEST(CongressSamplerTest, SmallGroupsBeatUniformShare) {
  // With heavy skew, congress gives small groups at least their senate-ish
  // share — far above their proportional share.
  Table t = MakeSkewedTable(10, 100);  // sizes 100..1000, total 5500
  Rng rng(31);
  CongressSampler cs;
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       cs.Build(t, {SkewedQuery()}, 550, &rng));
  ASSERT_NE(s.stratification(), nullptr);
  std::vector<int> per(s.stratification()->num_strata(), 0);
  for (uint32_t r : s.rows()) per[s.stratification()->StratumOfRow(r)]++;
  // Smallest group (100 rows, proportional share 10): congress gives more.
  for (size_t c = 0; c < per.size(); ++c) {
    if (s.stratification()->sizes()[c] == 100) {
      EXPECT_GT(per[c], 20);
    }
  }
}

TEST(RlSamplerTest, TruncatesWithoutRedistribution) {
  // One tiny group with huge CV: RL wants to give it many rows but the
  // group only has 5; the surplus must NOT show up elsewhere.
  Schema schema({{"g", DataType::kString}, {"v", DataType::kDouble}});
  TableBuilder b(schema);
  Rng gen(37);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(b.AppendRow({Value("tiny"), Value(gen.NextDouble() * 1000)}));
  }
  for (int i = 0; i < 2000; ++i) {
    ASSERT_OK(b.AppendRow({Value("big"), Value(100.0 + gen.NextGaussian())}));
  }
  Table t = std::move(b).Finish();
  Rng rng(41);
  RlSampler rl;
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v")};
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, rl.Build(t, {q}, 200, &rng));
  // The tiny group is fully taken (5 rows) and the total is well under
  // budget because RL wastes the surplus.
  ASSERT_NE(s.stratification(), nullptr);
  std::vector<int> per(s.stratification()->num_strata(), 0);
  for (uint32_t r : s.rows()) per[s.stratification()->StratumOfRow(r)]++;
  for (size_t c = 0; c < per.size(); ++c) {
    if (s.stratification()->sizes()[c] == 5) {
      EXPECT_EQ(per[c], 5);
    }
  }
  EXPECT_LT(s.size(), 200u);
}

TEST(SampleSeekSamplerTest, BiasedTowardLargeValues) {
  Schema schema({{"g", DataType::kString}, {"v", DataType::kDouble}});
  TableBuilder b(schema);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(b.AppendRow({Value("small"), Value(1.0)}));
    ASSERT_OK(b.AppendRow({Value("large"), Value(100.0)}));
  }
  Table t = std::move(b).Finish();
  Rng rng(43);
  SampleSeekSampler seek;
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v")};
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, seek.Build(t, {q}, 200, &rng));
  ASSERT_OK_AND_ASSIGN(const Column* v, t.ColumnByName("v"));
  int large = 0;
  for (uint32_t r : s.rows()) large += v->GetDouble(r) > 50;
  // ~99% of the mass sits on the large rows.
  EXPECT_GT(large, 180);
}

TEST(SampleSeekSamplerTest, FallsBackToUniformForCountOnly) {
  Table t = MakeSkewedTable(3, 100);
  Rng rng(47);
  SampleSeekSampler seek;
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Count()};
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, seek.Build(t, {q}, 100, &rng));
  EXPECT_EQ(s.method(), "Sample+Seek");
  EXPECT_EQ(s.size(), 100u);
}

TEST(CvoptSamplerTest, CoversEveryStratum) {
  Table t = MakeSkewedTable(12, 40);
  Rng rng(53);
  CvoptSampler cvopt;
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       cvopt.Build(t, {SkewedQuery()}, 240, &rng));
  ASSERT_NE(s.stratification(), nullptr);
  std::set<uint32_t> covered;
  for (uint32_t r : s.rows()) covered.insert(s.stratification()->StratumOfRow(r));
  EXPECT_EQ(covered.size(), s.stratification()->num_strata());
}

TEST(CvoptSamplerTest, NamesReflectNorm) {
  CvoptSampler l2;
  EXPECT_EQ(l2.name(), "CVOPT");
  AllocatorOptions opts;
  opts.norm = CvNorm::kLinf;
  CvoptSampler linf(opts);
  EXPECT_EQ(linf.name(), "CVOPT-INF");
}

TEST(CvoptSamplerTest, PlanExposesAllocation) {
  Table t = MakeSkewedTable(4, 100);
  CvoptSampler cvopt;
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan,
                       cvopt.Plan(t, {SkewedQuery()}, 100));
  EXPECT_EQ(plan.TotalSize(), 100u);
  EXPECT_EQ(plan.betas.size(), 4u);
}

TEST(DrawStratifiedTest, OversizedAllocationTakesAll) {
  // Allocations at or above the stratum population clamp to take-all: the
  // whole stratum at weight 1, no error (the Lemma-1 solver caps at n_c,
  // but hand-written or replayed allocations may not).
  Table t = MakeSkewedTable(2, 10);  // stratum sizes 10 and 20
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  Rng rng(59);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       DrawStratified(t, shared, {100000, 1}, "x", &rng));
  std::vector<int> per(2, 0);
  for (uint32_t r : s.rows()) per[shared->StratumOfRow(r)]++;
  EXPECT_EQ(per[0], static_cast<int>(shared->sizes()[0]));
  EXPECT_EQ(per[1], 1);
  // The clamp is no longer silent: stratum 0 (allocation >= population) is
  // flagged as served exactly, stratum 1 (1 of 20 rows) is not.
  ASSERT_EQ(s.stratum_exhaustive().size(), 2u);
  EXPECT_EQ(s.stratum_exhaustive()[0], 1);
  EXPECT_EQ(s.stratum_exhaustive()[1], 0);
  EXPECT_EQ(s.num_exhaustive_strata(), 1u);
  EXPECT_FALSE(DrawStratified(t, shared, {1}, "x", &rng).ok());  // wrong size
}

TEST(DrawStratifiedTest, ExactAllocationCountsAsExhaustive) {
  // An allocation exactly equal to the population takes every row too —
  // flagged the same as an over-population clamp.
  Table t = MakeSkewedTable(2, 10);  // stratum sizes 10 and 20
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  Rng rng(60);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       DrawStratified(t, shared, {10, 19}, "x", &rng));
  EXPECT_EQ(s.stratum_exhaustive()[0], 1);
  EXPECT_EQ(s.stratum_exhaustive()[1], 0);
}

}  // namespace
}  // namespace cvopt
