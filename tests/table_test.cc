// Tests for src/table: Value, Schema, Column, Table, TableBuilder.
#include <gtest/gtest.h>

#include "src/table/table_builder.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{7});
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.type(), DataType::kInt64);
  EXPECT_EQ(i.AsInt(), 7);
  EXPECT_DOUBLE_EQ(i.AsDouble(), 7.0);

  Value d(2.5);
  EXPECT_TRUE(d.is_double());
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);

  Value s("hi");
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.AsString(), "hi");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));  // int != double variant
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(SchemaTest, LookupByName) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(s.num_fields(), 2u);
  ASSERT_OK_AND_ASSIGN(size_t idx, s.FindColumn("b"));
  EXPECT_EQ(idx, 1u);
  EXPECT_TRUE(s.HasColumn("a"));
  EXPECT_FALSE(s.HasColumn("c"));
  EXPECT_FALSE(s.FindColumn("c").ok());
}

TEST(SchemaTest, ToStringRendersTypes) {
  Schema s({{"a", DataType::kInt64}, {"s", DataType::kString}});
  EXPECT_EQ(s.ToString(), "{a:int64, s:string}");
}

TEST(ColumnTest, IntColumn) {
  Column c(DataType::kInt64);
  c.AppendInt(1);
  c.AppendInt(-5);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetInt(1), -5);
  EXPECT_DOUBLE_EQ(c.GetDouble(1), -5.0);
  EXPECT_EQ(c.GroupCode(0), 1);
}

TEST(ColumnTest, StringDictionary) {
  Column c(DataType::kString);
  c.AppendString("a");
  c.AppendString("b");
  c.AppendString("a");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.GetCode(0), c.GetCode(2));
  EXPECT_NE(c.GetCode(0), c.GetCode(1));
  EXPECT_EQ(c.GetString(2), "a");
  EXPECT_EQ(c.dictionary().size(), 2u);
  EXPECT_EQ(c.LookupCode("b"), c.GetCode(1));
  EXPECT_EQ(c.LookupCode("zzz"), -1);
}

TEST(ColumnTest, AppendTypeChecking) {
  Column i(DataType::kInt64);
  EXPECT_OK(i.Append(Value(int64_t{1})));
  EXPECT_FALSE(i.Append(Value(1.5)).ok());
  EXPECT_FALSE(i.Append(Value("x")).ok());

  Column d(DataType::kDouble);
  EXPECT_OK(d.Append(Value(1.5)));
  EXPECT_OK(d.Append(Value(int64_t{2})));  // int coerces into double
  EXPECT_FALSE(d.Append(Value("x")).ok());
  EXPECT_DOUBLE_EQ(d.GetDouble(1), 2.0);

  Column s(DataType::kString);
  EXPECT_OK(s.Append(Value("ok")));
  EXPECT_FALSE(s.Append(Value(int64_t{3})).ok());
}

TEST(ColumnTest, GetValueRoundTrip) {
  Column s(DataType::kString);
  s.AppendString("hello");
  EXPECT_EQ(s.GetValue(0).AsString(), "hello");
  Column d(DataType::kDouble);
  d.AppendDouble(1.25);
  EXPECT_DOUBLE_EQ(d.GetValue(0).AsDouble(), 1.25);
}

TEST(TableBuilderTest, BuildsStudentTable) {
  Table t = MakeStudentTable();
  EXPECT_EQ(t.num_rows(), 8u);
  EXPECT_EQ(t.num_columns(), 6u);
  ASSERT_OK_AND_ASSIGN(const Column* major, t.ColumnByName("major"));
  EXPECT_EQ(major->GetString(0), "CS");
  EXPECT_EQ(major->GetString(7), "ME");
  ASSERT_OK_AND_ASSIGN(const Column* gpa, t.ColumnByName("gpa"));
  EXPECT_DOUBLE_EQ(gpa->GetDouble(2), 3.8);
}

TEST(TableBuilderTest, RejectsWrongWidthRow) {
  TableBuilder b(Schema({{"a", DataType::kInt64}}));
  EXPECT_FALSE(b.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_OK(b.AppendRow({Value(int64_t{1})}));
  EXPECT_EQ(b.num_rows(), 1u);
}

TEST(TableBuilderTest, RejectsTypeMismatch) {
  TableBuilder b(Schema({{"a", DataType::kInt64}}));
  EXPECT_FALSE(b.AppendRow({Value("str")}).ok());
}

TEST(TableTest, ColumnByNameErrors) {
  Table t = MakeStudentTable();
  EXPECT_FALSE(t.ColumnByName("nope").ok());
  EXPECT_FALSE(t.ColumnIndex("nope").ok());
}

TEST(TableTest, TakeRowsSelectsAndReorders) {
  Table t = MakeStudentTable();
  Table sub = t.TakeRows({7, 0, 2});
  EXPECT_EQ(sub.num_rows(), 3u);
  ASSERT_OK_AND_ASSIGN(const Column* major, sub.ColumnByName("major"));
  EXPECT_EQ(major->GetString(0), "ME");
  EXPECT_EQ(major->GetString(1), "CS");
  EXPECT_EQ(major->GetString(2), "Math");
  ASSERT_OK_AND_ASSIGN(const Column* age, sub.ColumnByName("age"));
  EXPECT_EQ(age->GetInt(0), 26);
}

TEST(TableTest, TakeRowsReinternsDictionary) {
  Table t = MakeStudentTable();
  Table sub = t.TakeRows({4, 5});  // both EE / Engineering
  ASSERT_OK_AND_ASSIGN(const Column* major, sub.ColumnByName("major"));
  EXPECT_EQ(major->dictionary().size(), 1u);
  EXPECT_EQ(major->GetString(0), "EE");
}

TEST(TableTest, DuplicateScalesRowCount) {
  Table t = MakeStudentTable();
  Table big = t.Duplicate(3);
  EXPECT_EQ(big.num_rows(), 24u);
  ASSERT_OK_AND_ASSIGN(const Column* age, big.ColumnByName("age"));
  EXPECT_EQ(age->GetInt(0), age->GetInt(8));
  EXPECT_EQ(age->GetInt(7), age->GetInt(23));
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakeStudentTable();
  const std::string s = t.ToString(2);
  EXPECT_NE(s.find("(6 more)"), std::string::npos);
}

TEST(TableTest, EmptyTable) {
  TableBuilder b(Schema({{"a", DataType::kInt64}}));
  Table t = std::move(b).Finish();
  EXPECT_EQ(t.num_rows(), 0u);
  Table sub = t.TakeRows({});
  EXPECT_EQ(sub.num_rows(), 0u);
}

}  // namespace
}  // namespace cvopt
