// Tests for CVOPT-INF (Section 5): the l-inf allocation equalizes per-group
// CVs, respects budgets/caps, and achieves a lower max-CV than the l2
// allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/core/cvopt_inf.h"
#include "src/core/lemma1.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

// Expected CV of the stratified mean estimator for group i with allocation s.
double EstimatorCv(double sigma, double mu, uint64_t n, double s) {
  if (s <= 0 || sigma == 0) return 0;
  const double nn = static_cast<double>(n);
  return sigma / mu * std::sqrt((nn - s) / (nn * s));
}

uint64_t Total(const std::vector<uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), uint64_t{0});
}

TEST(CvoptInfTest, BudgetRespected) {
  std::vector<double> sigmas{10, 1, 5};
  std::vector<double> mus{100, 100, 100};
  std::vector<uint64_t> ns{10000, 10000, 10000};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveCvoptInf(sigmas, mus, ns, 600));
  EXPECT_LE(Total(a.sizes), 600u);
  EXPECT_GE(Total(a.sizes), 590u);  // nearly all of it used
  for (size_t i = 0; i < 3; ++i) EXPECT_LE(a.sizes[i], ns[i]);
}

TEST(CvoptInfTest, FractionalSolutionEqualizesCv) {
  // Lemma 4: at the optimum all per-group CVs are equal.
  std::vector<double> sigmas{10, 1, 5, 2.5};
  std::vector<double> mus{100, 50, 200, 80};
  std::vector<uint64_t> ns{50000, 30000, 80000, 10000};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveCvoptInf(sigmas, mus, ns, 2000));
  std::vector<double> cvs;
  for (size_t i = 0; i < 4; ++i) {
    cvs.push_back(EstimatorCv(sigmas[i], mus[i], ns[i], a.fractional[i]));
  }
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(cvs[i], cvs[0], cvs[0] * 0.02)
        << "CVs not equalized: " << cvs[0] << " vs " << cvs[i];
  }
}

TEST(CvoptInfTest, LowerMaxCvThanL2) {
  Rng rng(77);
  std::vector<double> sigmas, mus;
  std::vector<uint64_t> ns;
  std::vector<double> alphas;
  for (int i = 0; i < 12; ++i) {
    const double mu = rng.UniformDouble(10, 500);
    const double sigma = mu * rng.UniformDouble(0.05, 2.0);
    const uint64_t n = 1000 + rng.Uniform(100000);
    sigmas.push_back(sigma);
    mus.push_back(mu);
    ns.push_back(n);
    alphas.push_back(sigma * sigma / (mu * mu));
  }
  const uint64_t budget = 3000;
  ASSERT_OK_AND_ASSIGN(Allocation inf, SolveCvoptInf(sigmas, mus, ns, budget));
  ASSERT_OK_AND_ASSIGN(Allocation l2, SolveLemma1(alphas, ns, budget));

  auto max_cv = [&](const Allocation& a) {
    double m = 0;
    for (size_t i = 0; i < sigmas.size(); ++i) {
      m = std::max(m, EstimatorCv(sigmas[i], mus[i], ns[i],
                                  static_cast<double>(a.sizes[i])));
    }
    return m;
  };
  // The l-inf optimum cannot have a larger max CV than the l2 optimum
  // (modulo integer rounding; allow 5% slack).
  EXPECT_LE(max_cv(inf), max_cv(l2) * 1.05);
}

TEST(CvoptInfTest, ZeroVarianceGroupsGetOneRow) {
  std::vector<double> sigmas{0, 5, 0};
  std::vector<double> mus{10, 100, 20};
  std::vector<uint64_t> ns{1000, 1000, 1000};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveCvoptInf(sigmas, mus, ns, 100));
  EXPECT_EQ(a.sizes[0], 1u);
  EXPECT_EQ(a.sizes[2], 1u);
  EXPECT_GE(a.sizes[1], 90u);
}

TEST(CvoptInfTest, AllConstantGroups) {
  std::vector<double> sigmas{0, 0};
  std::vector<double> mus{10, 20};
  std::vector<uint64_t> ns{500, 500};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveCvoptInf(sigmas, mus, ns, 50));
  EXPECT_EQ(a.sizes[0], 1u);
  EXPECT_EQ(a.sizes[1], 1u);
}

TEST(CvoptInfTest, BudgetCoversPopulation) {
  std::vector<double> sigmas{1, 2};
  std::vector<double> mus{10, 10};
  std::vector<uint64_t> ns{20, 30};
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveCvoptInf(sigmas, mus, ns, 1000));
  EXPECT_EQ(a.sizes[0], 20u);
  EXPECT_EQ(a.sizes[1], 30u);
}

TEST(CvoptInfTest, InputValidation) {
  EXPECT_FALSE(SolveCvoptInf({1.0}, {1.0, 2.0}, {10}, 5).ok());
  ASSERT_OK_AND_ASSIGN(Allocation empty, SolveCvoptInf({}, {}, {}, 5));
  EXPECT_TRUE(empty.sizes.empty());
}

// Property: across random instances, the integral allocation stays within
// budget and caps, and every nonempty group is represented.
class CvoptInfProperty : public testing::TestWithParam<int> {};

TEST_P(CvoptInfProperty, FeasibleAndCovering) {
  Rng rng(500 + GetParam());
  const size_t r = 2 + rng.Uniform(30);
  std::vector<double> sigmas(r), mus(r);
  std::vector<uint64_t> ns(r);
  for (size_t i = 0; i < r; ++i) {
    mus[i] = rng.UniformDouble(1, 1000);
    sigmas[i] = rng.NextDouble() < 0.2 ? 0.0 : mus[i] * rng.UniformDouble(0, 3);
    ns[i] = 1 + rng.Uniform(50000);
  }
  const uint64_t budget = r + rng.Uniform(5000);
  ASSERT_OK_AND_ASSIGN(Allocation a, SolveCvoptInf(sigmas, mus, ns, budget));
  EXPECT_LE(Total(a.sizes), budget);
  for (size_t i = 0; i < r; ++i) {
    EXPECT_LE(a.sizes[i], ns[i]);
    if (ns[i] > 0) {
      EXPECT_GE(a.sizes[i], 1u) << "group " << i << " missing";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CvoptInfProperty,
                         testing::Range(0, 10));

}  // namespace
}  // namespace cvopt
