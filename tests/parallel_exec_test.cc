// Differential tests for the morsel-driven parallel execution engine:
// every parallel path (predicate selection, GroupIndex builds, exact and
// approximate aggregation, stratification, group statistics, sampler
// builds) must reproduce the serial result across thread counts — integer
// outputs and orderings bit-identically, floating-point accumulations
// within the documented float-summation tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/core/cvopt_allocator.h"
#include "src/core/stratification.h"
#include "src/datagen/openaq_gen.h"
#include "src/estimate/approx_executor.h"
#include "src/exec/group_by_executor.h"
#include "src/exec/group_index.h"
#include "src/exec/parallel.h"
#include "src/expr/compiled_predicate.h"
#include "src/expr/plan_cache.h"
#include "src/sample/congress_sampler.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/senate_sampler.h"
#include "src/sample/streaming_cvopt_sampler.h"
#include "src/sample/uniform_sampler.h"
#include "src/stats/stats_collector.h"
#include "src/util/simd.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

// Non-power-of-two row count: chunk boundaries land mid-stride everywhere.
constexpr uint64_t kRows = 100003;

const Table& TestTable() {
  static const Table* t = [] {
    OpenAqOptions opts;
    opts.num_rows = kRows;
    return new Table(GenerateOpenAq(opts));
  }();
  return *t;
}

QuerySpec AllAggregatesQuery(bool filtered) {
  QuerySpec q;
  q.group_by = {"country", "parameter"};
  q.aggregates = {
      AggSpec::Avg("value"),    AggSpec::Sum("value"),
      AggSpec::Count(),
      AggSpec::CountIf(
          Predicate::Compare("value", CompareOp::kGt, Value(0.04))),
      AggSpec::Variance("value"), AggSpec::Median("value")};
  if (filtered) q.where = Predicate::Between("hour", 0, 11);
  return q;
}

// `weighted_counts` is true for the approximate executor, whose COUNT /
// COUNT_IF answers are Horvitz–Thompson weight sums (floats) rather than
// integer row counts.
void ExpectResultsMatch(const QueryResult& serial, const QueryResult& par,
                        bool weighted_counts) {
  ASSERT_EQ(par.num_groups(), serial.num_groups());
  ASSERT_EQ(par.num_aggregates(), serial.num_aggregates());
  for (size_t i = 0; i < serial.num_groups(); ++i) {
    // Group emission order (GroupIndex first-seen order) is bit-identical.
    EXPECT_EQ(par.label(i), serial.label(i));
    EXPECT_EQ(par.key(i).codes, serial.key(i).codes);
    for (size_t j = 0; j < serial.num_aggregates(); ++j) {
      const double s = serial.value(i, j);
      const double p = par.value(i, j);
      if (!weighted_counts &&
          serial.agg_labels()[j].rfind("COUNT", 0) == 0) {
        // Exact COUNT / COUNT_IF merge as integers: bit-exact.
        EXPECT_EQ(p, s) << serial.label(i) << " " << serial.agg_labels()[j];
      } else {
        // Float summation reassociates across chunks (documented
        // tolerance); medians select from the same multiset.
        EXPECT_NEAR(p, s, 1e-9 * std::max(1.0, std::fabs(s)))
            << serial.label(i) << " " << serial.agg_labels()[j];
      }
    }
  }
}

class ParallelExecTest : public testing::TestWithParam<int> {};

TEST_P(ParallelExecTest, ExactExecutorMatchesSerial) {
  const Table& t = TestTable();
  for (bool filtered : {false, true}) {
    QueryResult serial;
    {
      ScopedExecThreads one(1);
      ASSERT_OK_AND_ASSIGN(serial, ExecuteExact(t, AllAggregatesQuery(filtered)));
    }
    ScopedExecThreads threads(GetParam());
    ASSERT_OK_AND_ASSIGN(QueryResult par,
                         ExecuteExact(t, AllAggregatesQuery(filtered)));
    ExpectResultsMatch(serial, par, /*weighted_counts=*/false);
  }
}

TEST_P(ParallelExecTest, ExactExecutorFlatKeysMatchShim) {
  const Table& t = TestTable();
  ScopedExecThreads threads(GetParam());
  ASSERT_OK_AND_ASSIGN(QueryResult r, ExecuteExact(t, AllAggregatesQuery(true)));
  ASSERT_GT(r.num_groups(), 0u);
  // The flat SoA code store and the lazy GroupKey shim expose one key set.
  for (size_t i = 0; i < r.num_groups(); ++i) {
    ASSERT_EQ(r.key_arity(i), r.key(i).codes.size());
    for (size_t c = 0; c < r.key_arity(i); ++c) {
      EXPECT_EQ(r.key_codes(i)[c], r.key(i).codes[c]);
    }
    EXPECT_EQ(r.Find(r.key(i)), std::make_optional(i));
  }
  EXPECT_EQ(r.keys().size(), r.num_groups());
}

TEST_P(ParallelExecTest, ApproxExecutorMatchesSerial) {
  const Table& t = TestTable();
  // The sample itself is thread-count independent (stratification is
  // bit-identical, the draw runs on per-stratum Rng::ForStratum streams).
  Rng rng(42);
  UniformSampler sampler;
  ASSERT_OK_AND_ASSIGN(StratifiedSample sample,
                       sampler.Build(t, {AllAggregatesQuery(false)}, 20000, &rng));
  for (bool filtered : {false, true}) {
    QueryResult serial;
    {
      ScopedExecThreads one(1);
      ASSERT_OK_AND_ASSIGN(serial,
                           ExecuteApprox(sample, AllAggregatesQuery(filtered)));
    }
    ScopedExecThreads threads(GetParam());
    ASSERT_OK_AND_ASSIGN(QueryResult par,
                         ExecuteApprox(sample, AllAggregatesQuery(filtered)));
    ExpectResultsMatch(serial, par, /*weighted_counts=*/true);
  }
}

TEST_P(ParallelExecTest, ParallelSelectMatchesSelect) {
  const Table& t = TestTable();
  const PredicatePtr preds[] = {
      Predicate::Between("hour", 0, 11),
      Predicate::And(
          Predicate::Between("hour", 0, 17),
          Predicate::Or(Predicate::In("parameter", {Value("pm25"), Value("o3")}),
                        Predicate::Not(Predicate::Compare(
                            "country", CompareOp::kEq, "US")))),
      Predicate::Not(Predicate::Compare("value", CompareOp::kLt, Value(10.0))),
      Predicate::True()};
  ScopedExecThreads threads(GetParam());
  for (const auto& p : preds) {
    ASSERT_OK_AND_ASSIGN(CompiledPredicate cp,
                         CompiledPredicate::Compile(t, *p));
    const std::vector<uint32_t> serial = cp.Select();
    EXPECT_EQ(ParallelSelect(cp), serial) << p->ToString();

    // EvalMaskRange stitches to the full mask.
    std::vector<uint8_t> full(t.num_rows()), ranged(t.num_rows());
    cp.EvalMask(nullptr, t.num_rows(), full.data());
    ParallelEvalMask(cp, nullptr, t.num_rows(), ranged.data());
    EXPECT_EQ(ranged, full) << p->ToString();
  }
}

TEST_P(ParallelExecTest, GroupIndexBitIdenticalAcrossThreads) {
  const Table& t = TestTable();
  // Exercises every tier: single string column (direct), six packed
  // columns (packed), and BuildForRows over a row subset.
  const std::vector<std::vector<std::string>> attr_sets = {
      {"country"},
      {"country", "parameter", "unit", "year", "month", "hour"},
  };
  std::vector<uint32_t> subset;
  for (uint32_t r = 0; r < t.num_rows(); r += 3) subset.push_back(r);
  for (const auto& attrs : attr_sets) {
    GroupIndex serial_full = [&] {
      ScopedExecThreads one(1);
      return std::move(GroupIndex::Build(t, attrs)).ValueOrDie();
    }();
    GroupIndex serial_rows = [&] {
      ScopedExecThreads one(1);
      return std::move(GroupIndex::BuildForRows(t, attrs, subset)).ValueOrDie();
    }();
    ScopedExecThreads threads(GetParam());
    ASSERT_OK_AND_ASSIGN(GroupIndex par_full, GroupIndex::Build(t, attrs));
    ASSERT_OK_AND_ASSIGN(GroupIndex par_rows,
                         GroupIndex::BuildForRows(t, attrs, subset));
    EXPECT_EQ(par_full.tier(), serial_full.tier());
    EXPECT_EQ(par_full.row_groups(), serial_full.row_groups());
    EXPECT_EQ(par_full.sizes(), serial_full.sizes());
    EXPECT_EQ(par_rows.row_groups(), serial_rows.row_groups());
    EXPECT_EQ(par_rows.sizes(), serial_rows.sizes());
    for (size_t g = 0; g < serial_full.num_groups(); ++g) {
      EXPECT_EQ(par_full.KeyOf(g).codes, serial_full.KeyOf(g).codes);
    }
  }
}

TEST_P(ParallelExecTest, WideTierBitIdenticalAcrossThreads) {
  // Three int columns with ~2^40 spreads exceed 64 packed bits -> kWide.
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"c", DataType::kInt64}});
  TableBuilder b(schema);
  Rng rng(7);
  const int64_t kSpread = int64_t{1} << 40;
  for (int i = 0; i < 20000; ++i) {
    const int64_t base = static_cast<int64_t>(rng.Next64() % 50);
    ASSERT_OK(b.AppendRow({Value(base * kSpread),
                           Value(-base * kSpread),
                           Value(base % 7)}));
  }
  Table t = std::move(b).Finish();
  GroupIndex serial = [&] {
    ScopedExecThreads one(1);
    return std::move(GroupIndex::Build(t, {"a", "b", "c"})).ValueOrDie();
  }();
  ASSERT_EQ(serial.tier(), GroupIndex::Tier::kWide);
  ScopedExecThreads threads(GetParam(), 128);
  ASSERT_OK_AND_ASSIGN(GroupIndex par, GroupIndex::Build(t, {"a", "b", "c"}));
  EXPECT_EQ(par.tier(), GroupIndex::Tier::kWide);
  EXPECT_EQ(par.row_groups(), serial.row_groups());
  EXPECT_EQ(par.sizes(), serial.sizes());
}

TEST_P(ParallelExecTest, StratificationBitIdenticalAcrossThreads) {
  const Table& t = TestTable();
  const PredicatePtr where = Predicate::Between("hour", 6, 18);
  Stratification serial_plain = [&] {
    ScopedExecThreads one(1);
    return std::move(Stratification::Build(t, {"country", "parameter"}))
        .ValueOrDie();
  }();
  Stratification serial_filtered = [&] {
    ScopedExecThreads one(1);
    return std::move(Stratification::Build(t, {"country", "parameter"}, where))
        .ValueOrDie();
  }();
  ScopedExecThreads threads(GetParam());
  ASSERT_OK_AND_ASSIGN(Stratification par_plain,
                       Stratification::Build(t, {"country", "parameter"}));
  ASSERT_OK_AND_ASSIGN(
      Stratification par_filtered,
      Stratification::Build(t, {"country", "parameter"}, where));
  EXPECT_EQ(par_plain.row_strata(), serial_plain.row_strata());
  EXPECT_EQ(par_plain.sizes(), serial_plain.sizes());
  EXPECT_EQ(par_filtered.row_strata(), serial_filtered.row_strata());
  EXPECT_EQ(par_filtered.sizes(), serial_filtered.sizes());
  ASSERT_EQ(par_filtered.num_strata(), serial_filtered.num_strata());
  for (size_t c = 0; c < serial_filtered.num_strata(); ++c) {
    EXPECT_EQ(par_filtered.key(c).codes, serial_filtered.key(c).codes);
  }
}

TEST_P(ParallelExecTest, GroupStatsMatchSerial) {
  const Table& t = TestTable();
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"country", "parameter"}));
  ASSERT_OK_AND_ASSIGN(const Column* v, t.ColumnByName("value"));
  StatSource src;
  src.column = v;
  StatSource one;
  one.constant_one = true;
  GroupStatsTable serial = [&] {
    ScopedExecThreads st(1);
    return std::move(CollectGroupStats(strat, {src, one})).ValueOrDie();
  }();
  ScopedExecThreads threads(GetParam());
  ASSERT_OK_AND_ASSIGN(GroupStatsTable par, CollectGroupStats(strat, {src, one}));
  ASSERT_EQ(par.num_strata(), serial.num_strata());
  for (size_t c = 0; c < serial.num_strata(); ++c) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(par.At(c, j).count(), serial.At(c, j).count());
      EXPECT_DOUBLE_EQ(par.At(c, j).min(), serial.At(c, j).min());
      EXPECT_DOUBLE_EQ(par.At(c, j).max(), serial.At(c, j).max());
      EXPECT_NEAR(par.At(c, j).mean(), serial.At(c, j).mean(),
                  1e-9 * std::max(1.0, std::fabs(serial.At(c, j).mean())));
      EXPECT_NEAR(par.At(c, j).variance_population(),
                  serial.At(c, j).variance_population(),
                  1e-6 * std::max(1.0, serial.At(c, j).variance_population()));
    }
  }
}

TEST_P(ParallelExecTest, AllSamplersBitIdenticalAcrossThreads) {
  const Table& t = TestTable();
  QuerySpec q = AllAggregatesQuery(false);
  const UniformSampler uniform;
  const SenateSampler senate;
  const CongressSampler congress;
  const CvoptSampler cvopt;
  for (const Sampler* sampler :
       {static_cast<const Sampler*>(&uniform),
        static_cast<const Sampler*>(&senate),
        static_cast<const Sampler*>(&congress),
        static_cast<const Sampler*>(&cvopt)}) {
    StratifiedSample serial = [&] {
      ScopedExecThreads one(1);
      Rng rng(1234);
      return std::move(sampler->Build(t, {q}, 15000, &rng)).ValueOrDie();
    }();
    ScopedExecThreads threads(GetParam());
    Rng rng(1234);
    ASSERT_OK_AND_ASSIGN(StratifiedSample par,
                         sampler->Build(t, {q}, 15000, &rng));
    // Per-stratum Rng::ForStratum streams plus the thread-count-independent
    // statistics chunking make every sampler's rows AND emission order
    // bit-identical at any thread count — including CVOPT, whose allocation
    // solves from floating-point statistics.
    EXPECT_EQ(par.rows(), serial.rows()) << sampler->name();
    EXPECT_EQ(par.weights(), serial.weights()) << sampler->name();
  }
}

TEST_P(ParallelExecTest, CvoptPlanBitIdenticalAcrossThreads) {
  const Table& t = TestTable();
  QuerySpec q = AllAggregatesQuery(false);
  AllocationPlan serial = [&] {
    ScopedExecThreads one(1);
    return std::move(PlanCvoptAllocation(t, {q}, 15000, {})).ValueOrDie();
  }();
  ScopedExecThreads threads(GetParam());
  ASSERT_OK_AND_ASSIGN(AllocationPlan par, PlanCvoptAllocation(t, {q}, 15000, {}));
  // The statistics pass chunks by input shape, never by thread count, so
  // betas — and the allocation solved from them — are exactly reproducible
  // (the sampler determinism contract depends on this).
  ASSERT_EQ(par.betas.size(), serial.betas.size());
  for (size_t c = 0; c < serial.betas.size(); ++c) {
    EXPECT_EQ(par.betas[c], serial.betas[c]) << "stratum " << c;
  }
  EXPECT_EQ(par.allocation.sizes, serial.allocation.sizes);
  // The CVOPT sampler build end-to-end still produces a valid sample.
  Rng rng(99);
  const CvoptSampler sampler;
  ASSERT_OK_AND_ASSIGN(StratifiedSample sample, sampler.Build(t, {q}, 15000, &rng));
  EXPECT_GT(sample.rows().size(), 0u);
  EXPECT_EQ(sample.rows().size(), sample.weights().size());
}

TEST_P(ParallelExecTest, ForcedRadixExecutorsMatchDefaultPaths) {
  // With the radix build forced, the executors take the partition-owned
  // accumulation path on unmasked queries (and the GroupIndex still yields
  // bit-identical ids); results must match the default serial path within
  // the float-summation tolerance, with MEDIAN and counts exact.
  const Table& t = TestTable();
  Rng srng(42);
  UniformSampler sampler;
  ASSERT_OK_AND_ASSIGN(StratifiedSample sample,
                       sampler.Build(t, {AllAggregatesQuery(false)}, 20000, &srng));
  for (bool filtered : {false, true}) {
    QueryResult serial_exact, serial_approx;
    {
      ScopedExecThreads one(1);
      ASSERT_OK_AND_ASSIGN(serial_exact,
                           ExecuteExact(t, AllAggregatesQuery(filtered)));
      ASSERT_OK_AND_ASSIGN(serial_approx,
                           ExecuteApprox(sample, AllAggregatesQuery(filtered)));
    }
    ScopedRadixOverride radix(/*mode=*/1, /*partitions=*/16);
    ScopedExecThreads threads(GetParam());
    ASSERT_OK_AND_ASSIGN(QueryResult par_exact,
                         ExecuteExact(t, AllAggregatesQuery(filtered)));
    ASSERT_OK_AND_ASSIGN(QueryResult par_approx,
                         ExecuteApprox(sample, AllAggregatesQuery(filtered)));
    ExpectResultsMatch(serial_exact, par_exact, /*weighted_counts=*/false);
    ExpectResultsMatch(serial_approx, par_approx, /*weighted_counts=*/true);
  }
}

TEST_P(ParallelExecTest, HugeGroupCountExecutorMatchesSerial) {
  // The many-keys regime (the radix path's target): ~tens of thousands of
  // groups over 100k rows. At >= 2 threads the automatic heuristic engages
  // the partitioned build; ids, counts, and sums must match the serial
  // chunk-merge path.
  const Table& t = TestTable();
  QuerySpec q;
  q.group_by = {"country", "parameter", "unit", "year", "month", "hour"};
  q.aggregates = {AggSpec::Avg("value"), AggSpec::Count(),
                  AggSpec::Variance("value")};
  QueryResult serial;
  {
    ScopedExecThreads one(1);
    ASSERT_OK_AND_ASSIGN(serial, ExecuteExact(t, q));
  }
  ScopedExecThreads threads(GetParam());
  ASSERT_OK_AND_ASSIGN(QueryResult par, ExecuteExact(t, q));
  ExpectResultsMatch(serial, par, /*weighted_counts=*/false);
}

TEST_P(ParallelExecTest, StratumRowListsMatchEveryDerivation) {
  // The per-stratum row lists are a pure function of the stratification:
  // the counting-sort fallback, the partition-backed fill, and every
  // thread count must produce identical arrays — for plain and filtered
  // builds alike.
  const Table& t = TestTable();
  const PredicatePtr where = Predicate::Between("hour", 6, 18);
  std::vector<uint32_t> ref_rows, ref_filtered_rows;
  std::vector<size_t> ref_base, ref_filtered_base;
  {
    ScopedExecThreads one(1);
    ASSERT_OK_AND_ASSIGN(Stratification s,
                         Stratification::Build(t, {"country", "parameter"}));
    ASSERT_OK_AND_ASSIGN(
        Stratification sf,
        Stratification::Build(t, {"country", "parameter"}, where));
    EXPECT_FALSE(s.stratum_rows_materialized());
    ref_rows = s.stratum_rows();  // counting-sort fallback (no partitions)
    ref_base = s.stratum_row_base();
    EXPECT_TRUE(s.stratum_rows_materialized());
    ref_filtered_rows = sf.stratum_rows();
    ref_filtered_base = sf.stratum_row_base();
    // The lists tile the (surviving) rows exactly.
    EXPECT_EQ(ref_rows.size(), t.num_rows());
    EXPECT_EQ(ref_base.back(), t.num_rows());
    EXPECT_LT(ref_filtered_rows.size(), t.num_rows());
  }
  ScopedRadixOverride radix(/*mode=*/1, /*partitions=*/8);
  ScopedExecThreads threads(GetParam());
  ASSERT_OK_AND_ASSIGN(Stratification par,
                       Stratification::Build(t, {"country", "parameter"}));
  ASSERT_OK_AND_ASSIGN(
      Stratification parf,
      Stratification::Build(t, {"country", "parameter"}, where));
  EXPECT_TRUE(par.stratum_rows_cheap());  // partition-backed fill available
  EXPECT_EQ(par.stratum_rows(), ref_rows);
  EXPECT_EQ(par.stratum_row_base(), ref_base);
  EXPECT_EQ(parf.stratum_rows(), ref_filtered_rows);
  EXPECT_EQ(parf.stratum_row_base(), ref_filtered_base);
}

TEST_P(ParallelExecTest, SamplersBitIdenticalWithForcedRadix) {
  // End-to-end through the partition artifact: stratification lists come
  // from the radix build, CollectGroupStats walks them list-ordered, and
  // DrawStratified draws from them — every sampler's rows and weights must
  // still be bit-identical to the default serial path (the PR 4 sample
  // determinism contract survives the refactor).
  const Table& t = TestTable();
  QuerySpec q = AllAggregatesQuery(false);
  const UniformSampler uniform;
  const SenateSampler senate;
  const CvoptSampler cvopt;
  for (const Sampler* sampler : {static_cast<const Sampler*>(&uniform),
                                 static_cast<const Sampler*>(&senate),
                                 static_cast<const Sampler*>(&cvopt)}) {
    StratifiedSample serial = [&] {
      ScopedExecThreads one(1);
      Rng rng(5150);
      return std::move(sampler->Build(t, {q}, 12000, &rng)).ValueOrDie();
    }();
    ScopedRadixOverride radix(/*mode=*/1, /*partitions=*/8);
    ScopedExecThreads threads(GetParam());
    Rng rng(5150);
    ASSERT_OK_AND_ASSIGN(StratifiedSample par, sampler->Build(t, {q}, 12000, &rng));
    EXPECT_EQ(par.rows(), serial.rows()) << sampler->name();
    EXPECT_EQ(par.weights(), serial.weights()) << sampler->name();
  }
}

TEST_P(ParallelExecTest, ExecutorsBitIdenticalSimdOnVsOff) {
  // The vector kernels' determinism contract: with the SIMD backends
  // pinned off, exact and approx executors — masked and unmasked, default
  // and forced-radix builds — produce bitwise-identical values (not
  // tolerance-equal) at every thread count. Selection vectors keep the
  // same rows in the same order, so every float accumulates in the same
  // sequence. On hosts without a vector backend both passes are scalar.
  const Table& t = TestTable();
  Rng srng(42);
  UniformSampler sampler;
  ASSERT_OK_AND_ASSIGN(StratifiedSample sample,
                       sampler.Build(t, {AllAggregatesQuery(false)}, 20000,
                                     &srng));
  ScopedExecThreads threads(GetParam());
  for (const int radix_mode : {0, 1}) {
    ScopedRadixOverride radix(radix_mode, /*partitions=*/radix_mode ? 8 : 0);
    for (const bool filtered : {false, true}) {
      const QuerySpec q = AllAggregatesQuery(filtered);
      simd::SetEnabledForTesting(0);
      ASSERT_OK_AND_ASSIGN(QueryResult exact_scalar, ExecuteExact(t, q));
      ASSERT_OK_AND_ASSIGN(QueryResult approx_scalar,
                           ExecuteApprox(sample, q));
      simd::SetEnabledForTesting(1);
      ASSERT_OK_AND_ASSIGN(QueryResult exact_vec, ExecuteExact(t, q));
      ASSERT_OK_AND_ASSIGN(QueryResult approx_vec, ExecuteApprox(sample, q));
      auto expect_bitwise = [&](const QueryResult& a, const QueryResult& b) {
        ASSERT_EQ(a.num_groups(), b.num_groups());
        for (size_t i = 0; i < a.num_groups(); ++i) {
          ASSERT_EQ(a.label(i), b.label(i));
          for (size_t j = 0; j < a.num_aggregates(); ++j) {
            ASSERT_EQ(a.value(i, j), b.value(i, j))
                << "radix=" << radix_mode << " filtered=" << filtered
                << " group " << a.label(i) << " agg " << j;
          }
        }
      };
      expect_bitwise(exact_scalar, exact_vec);
      expect_bitwise(approx_scalar, approx_vec);
    }
  }
}

TEST_P(ParallelExecTest, StreamingBuilderBitIdenticalSimdOnVsOff) {
  // The streaming builder's batched offer path (blockwise filter kernels +
  // RouteBatch) must reproduce the per-row Offer loop exactly: same rows,
  // same weights, same RNG consumption — with the vector backend off and
  // on.
  const Table& t = TestTable();
  const QuerySpec q = AllAggregatesQuery(true);
  ScopedExecThreads threads(GetParam());
  StreamingCvoptSampler sampler(10'000);
  StratifiedSample scalar = [&] {
    simd::SetEnabledForTesting(0);
    Rng rng(777);
    return std::move(sampler.Build(t, {q}, 5000, &rng)).ValueOrDie();
  }();
  simd::SetEnabledForTesting(1);
  Rng rng(777);
  ASSERT_OK_AND_ASSIGN(StratifiedSample vec, sampler.Build(t, {q}, 5000, &rng));
  EXPECT_EQ(vec.rows(), scalar.rows());
  EXPECT_EQ(vec.weights(), scalar.weights());
}

TEST_P(ParallelExecTest, EmptyAndTinyTables) {
  OpenAqOptions opts;
  opts.num_rows = 0;
  Table empty = GenerateOpenAq(opts);
  opts.num_rows = 1;
  Table single = GenerateOpenAq(opts);

  ScopedExecThreads threads(GetParam(), 1);  // grain 1: force chunk attempts
  for (const Table* t : {&empty, &single}) {
    ASSERT_OK_AND_ASSIGN(QueryResult r,
                         ExecuteExact(*t, AllAggregatesQuery(false)));
    EXPECT_EQ(r.num_groups(), t->num_rows());
    ASSERT_OK_AND_ASSIGN(QueryResult rf,
                         ExecuteExact(*t, AllAggregatesQuery(true)));
    EXPECT_LE(rf.num_groups(), t->num_rows());
    ASSERT_OK_AND_ASSIGN(Stratification s,
                         Stratification::Build(*t, {"country"}));
    EXPECT_EQ(s.row_strata().size(), t->num_rows());
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelExecTest,
                         testing::Values(1, 2, 3, 8));

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedExecThreads threads(8, 16);
  for (size_t n : {0u, 1u, 15u, 16u, 31u, 32u, 1000u, 100003u}) {
    std::vector<int> hits(n, 0);
    ParallelFor(n, [&](size_t, size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) hits[i]++;
    });
    EXPECT_EQ(std::count(hits.begin(), hits.end(), 1),
              static_cast<long>(n));
  }
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ScopedExecThreads threads(4, 16);
  // A loop body that re-enters ParallelFor (e.g. a user callback calling
  // back into the engine) must resolve to one chunk and run inline — from
  // pool workers and from the draining caller alike.
  std::atomic<size_t> total{0};
  ParallelFor(64, [&](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      size_t inner = 0;
      ParallelFor(100, [&](size_t, size_t ilo, size_t ihi) {
        inner += ihi - ilo;
      });
      total += inner;
    }
  });
  EXPECT_EQ(total.load(), 64u * 100u);
}

TEST(ParallelForTest, ChunkBoundariesPartitionTheRange) {
  for (size_t n : {1u, 7u, 100u, 100003u}) {
    for (size_t chunks : {1u, 2u, 3u, 8u}) {
      EXPECT_EQ(ChunkBegin(n, chunks, 0), 0u);
      EXPECT_EQ(ChunkBegin(n, chunks, chunks), n);
      for (size_t c = 0; c < chunks; ++c) {
        EXPECT_LE(ChunkBegin(n, chunks, c), ChunkBegin(n, chunks, c + 1));
      }
    }
  }
}

}  // namespace
}  // namespace cvopt
