// Tests for Section 4.3 workload deduction — reproduces the paper's running
// example: Tables 1 (Student), 2 (workload A/B/C with repeats 20/10/15) and
// 3 (aggregation groups with frequencies 25/35/10).
#include <gtest/gtest.h>

#include <map>

#include "src/core/workload.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

Workload MakePaperWorkload() {
  Workload w;
  // A: SELECT AVG(age), AVG(gpa) FROM Student GROUP BY major  (x20)
  QuerySpec a;
  a.name = "A";
  a.group_by = {"major"};
  a.aggregates = {AggSpec::Avg("age"), AggSpec::Avg("gpa")};
  EXPECT_OK(w.Add(a, 20));
  // B: SELECT AVG(age), AVG(sat) FROM Student GROUP BY college  (x10)
  QuerySpec b;
  b.name = "B";
  b.group_by = {"college"};
  b.aggregates = {AggSpec::Avg("age"), AggSpec::Avg("sat")};
  EXPECT_OK(w.Add(b, 10));
  // C: SELECT AVG(gpa) FROM Student GROUP BY major WHERE college=Science (x15)
  QuerySpec c;
  c.name = "C";
  c.group_by = {"major"};
  c.aggregates = {AggSpec::Avg("gpa")};
  c.where = Predicate::Compare("college", CompareOp::kEq, "Science");
  EXPECT_OK(w.Add(c, 15));
  return w;
}

TEST(WorkloadTest, RejectsBadEntries) {
  Workload w;
  QuerySpec q;
  q.group_by = {"major"};
  q.aggregates = {AggSpec::Avg("age")};
  EXPECT_FALSE(w.Add(q, 0).ok());
  EXPECT_FALSE(w.Add(q, -1).ok());
  QuerySpec no_aggs;
  no_aggs.group_by = {"major"};
  EXPECT_FALSE(w.Add(no_aggs, 1).ok());
  EXPECT_OK(w.Add(q, 1));
  EXPECT_EQ(w.entries().size(), 1u);
}

TEST(WorkloadTest, EmptyWorkloadFailsDeduce) {
  Workload w;
  Table t = MakeStudentTable();
  EXPECT_FALSE(w.Deduce(t).ok());
}

TEST(WorkloadTest, ReproducesPaperTable3) {
  Table t = MakeStudentTable();
  Workload w = MakePaperWorkload();
  ASSERT_OK_AND_ASSIGN(Workload::AllocationInput input, w.Deduce(t));

  // Index deduced groups: (group_by, group, aggregate) -> frequency.
  std::map<std::tuple<std::string, std::string, std::string>, double> freq;
  for (const auto& ag : input.aggregation_groups) {
    freq[{ag.group_by, ag.group, ag.aggregate}] = ag.frequency;
  }

  // The paper's Table 3 prints frequency 25 for the groups that appear only
  // in query A, but A repeats 20 times in Table 2 (and 20+10+15 = 45 matches
  // the stated workload size), so the 25 is a typo in the pre-print. We
  // assert the arithmetic that follows from Table 2 directly:
  //   (age, major=*)        <- A only            = 20
  //   (GPA, major=CS/Math)  <- A + C (Science)   = 35
  //   (GPA, major=EE/ME)    <- A only            = 20
  //   (age|SAT, college=*)  <- B only            = 10
  EXPECT_DOUBLE_EQ((freq[{"major", "CS", "AVG(age)"}]), 20);
  EXPECT_DOUBLE_EQ((freq[{"major", "EE", "AVG(age)"}]), 20);
  EXPECT_DOUBLE_EQ((freq[{"major", "CS", "AVG(gpa)"}]), 35);
  EXPECT_DOUBLE_EQ((freq[{"major", "Math", "AVG(gpa)"}]), 35);
  EXPECT_DOUBLE_EQ((freq[{"major", "EE", "AVG(gpa)"}]), 20);
  EXPECT_DOUBLE_EQ((freq[{"major", "ME", "AVG(gpa)"}]), 20);
  EXPECT_DOUBLE_EQ((freq[{"college", "Science", "AVG(age)"}]), 10);
  EXPECT_DOUBLE_EQ((freq[{"college", "Engineering", "AVG(sat)"}]), 10);
}

TEST(WorkloadTest, MergesDistinctQueriesByGroupingSet) {
  Table t = MakeStudentTable();
  Workload w = MakePaperWorkload();
  ASSERT_OK_AND_ASSIGN(Workload::AllocationInput input, w.Deduce(t));
  // Two grouping sets: {major} and {college}.
  ASSERT_EQ(input.queries.size(), 2u);
  // The {major} query unions the aggregates of A and C: age + gpa.
  size_t major_idx =
      input.queries[0].group_by == std::vector<std::string>{"major"} ? 0 : 1;
  EXPECT_EQ(input.queries[major_idx].aggregates.size(), 2u);
  EXPECT_EQ(input.queries[1 - major_idx].aggregates.size(), 2u);
}

TEST(WorkloadTest, WeightFnReturnsDeducedFrequencies) {
  Table t = MakeStudentTable();
  Workload w = MakePaperWorkload();
  ASSERT_OK_AND_ASSIGN(Workload::AllocationInput input, w.Deduce(t));
  ASSERT_TRUE(static_cast<bool>(input.options.group_weight_fn));

  // Locate the {major} query and the AVG(gpa) aggregate within it.
  size_t qi =
      input.queries[0].group_by == std::vector<std::string>{"major"} ? 0 : 1;
  size_t gpa_idx = 0;
  for (size_t j = 0; j < input.queries[qi].aggregates.size(); ++j) {
    if (input.queries[qi].aggregates[j].Label() == "AVG(gpa)") gpa_idx = j;
  }
  // Group key for major=CS.
  ASSERT_OK_AND_ASSIGN(const Column* major, t.ColumnByName("major"));
  GroupKey cs{{major->LookupCode("CS")}};
  EXPECT_DOUBLE_EQ(input.options.group_weight_fn(qi, cs, gpa_idx), 35.0);
  GroupKey ee{{major->LookupCode("EE")}};
  EXPECT_DOUBLE_EQ(input.options.group_weight_fn(qi, ee, gpa_idx), 20.0);
  // Unknown group -> weight 0.
  GroupKey bogus{{9999}};
  EXPECT_DOUBLE_EQ(input.options.group_weight_fn(qi, bogus, gpa_idx), 0.0);
}

TEST(WorkloadTest, DeducedInputDrivesAllocation) {
  Table t = MakeStudentTable();
  Workload w = MakePaperWorkload();
  ASSERT_OK_AND_ASSIGN(Workload::AllocationInput input, w.Deduce(t));
  ASSERT_OK_AND_ASSIGN(
      AllocationPlan plan,
      PlanCvoptAllocation(t, input.queries, 6, input.options));
  EXPECT_EQ(plan.TotalSize(), 6u);
  EXPECT_EQ(plan.strat->num_strata(), 4u);  // (major, college) combos
}

}  // namespace
}  // namespace cvopt
