// Shared helpers for the cvopt test suite.
#ifndef CVOPT_TESTS_TEST_UTIL_H_
#define CVOPT_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/exec/group_index.h"
#include "src/exec/parallel.h"
#include "src/table/table_builder.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace cvopt {

/// Applies a thread count (default grain 512, so test-sized tables actually
/// split into many morsels) to the shared scheduler for the lifetime of the
/// scope.
class ScopedExecThreads {
 public:
  explicit ScopedExecThreads(int threads, size_t grain = 512)
      : saved_(GetExecOptions()) {
    ExecOptions o;
    o.num_threads = threads;
    o.morsel_min_rows = grain;
    SetExecOptions(o);
  }
  ~ScopedExecThreads() { SetExecOptions(saved_); }

 private:
  ExecOptions saved_;
};

/// Forces (mode 1) or suppresses (mode 0) the radix-partitioned GroupIndex
/// build for the lifetime of the scope, restoring the automatic heuristic
/// on exit. `partitions` pins the partition count (0 = derive from the
/// thread count).
class ScopedRadixOverride {
 public:
  explicit ScopedRadixOverride(int mode, size_t partitions = 0) {
    GroupIndex::SetRadixOverrideForTesting(mode, partitions);
  }
  ~ScopedRadixOverride() { GroupIndex::SetRadixOverrideForTesting(-1, 0); }
};

#define ASSERT_OK(expr)                                         \
  do {                                                          \
    const ::cvopt::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

#define EXPECT_OK(expr)                                         \
  do {                                                          \
    const ::cvopt::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                        \
  auto CVOPT_CONCAT_(_r_, __LINE__) = (rexpr);                  \
  ASSERT_TRUE(CVOPT_CONCAT_(_r_, __LINE__).ok())                \
      << CVOPT_CONCAT_(_r_, __LINE__).status().ToString();      \
  lhs = std::move(CVOPT_CONCAT_(_r_, __LINE__)).value();

/// The paper's example Student table (Table 1).
inline Table MakeStudentTable() {
  Schema schema({{"id", DataType::kInt64},
                 {"age", DataType::kInt64},
                 {"gpa", DataType::kDouble},
                 {"sat", DataType::kInt64},
                 {"major", DataType::kString},
                 {"college", DataType::kString}});
  TableBuilder b(schema);
  auto add = [&b](int64_t id, int64_t age, double gpa, int64_t sat,
                  const char* major, const char* college) {
    Status st = b.AppendRow({Value(id), Value(age), Value(gpa), Value(sat),
                             Value(major), Value(college)});
    CVOPT_CHECK(st.ok(), "append failed");
  };
  add(1, 25, 3.4, 1250, "CS", "Science");
  add(2, 22, 3.1, 1280, "CS", "Science");
  add(3, 24, 3.8, 1230, "Math", "Science");
  add(4, 28, 3.6, 1270, "Math", "Science");
  add(5, 21, 3.5, 1210, "EE", "Engineering");
  add(6, 23, 3.2, 1260, "EE", "Engineering");
  add(7, 27, 3.7, 1220, "ME", "Engineering");
  add(8, 26, 3.3, 1230, "ME", "Engineering");
  return std::move(b).Finish();
}

/// A small skewed table: `groups` groups, group g has (g+1)*base rows with
/// value distribution N(mean_g, sigma_g) where means and sigmas diverge.
inline Table MakeSkewedTable(int groups, int base, uint64_t seed = 7) {
  Schema schema({{"g", DataType::kInt64}, {"v", DataType::kDouble}});
  TableBuilder b(schema);
  Rng rng(seed);
  for (int g = 0; g < groups; ++g) {
    const int n = (g + 1) * base;
    const double mean = 10.0 * (g + 1);
    const double sigma = 0.5 * (groups - g);  // small groups more variable
    for (int i = 0; i < n; ++i) {
      Status st = b.AppendRow(
          {Value(static_cast<int64_t>(g)),
           Value(mean + sigma * rng.NextGaussian())});
      CVOPT_CHECK(st.ok(), "append failed");
    }
  }
  return std::move(b).Finish();
}

}  // namespace cvopt

#endif  // CVOPT_TESTS_TEST_UTIL_H_
