// Tests for parallel group-statistics collection.
#include <gtest/gtest.h>

#include <cmath>

#include "src/datagen/openaq_gen.h"
#include "src/stats/stats_collector.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

class ParallelStatsTest : public testing::TestWithParam<int> {};

TEST_P(ParallelStatsTest, MatchesSerialCollection) {
  OpenAqOptions opts;
  opts.num_rows = 100000;
  Table t = GenerateOpenAq(opts);
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"country", "parameter"}));
  ASSERT_OK_AND_ASSIGN(const Column* v, t.ColumnByName("value"));
  StatSource src;
  src.column = v;
  StatSource one;
  one.constant_one = true;

  ASSERT_OK_AND_ASSIGN(GroupStatsTable serial,
                       CollectGroupStats(strat, {src, one}));
  ASSERT_OK_AND_ASSIGN(GroupStatsTable parallel,
                       CollectGroupStatsParallel(strat, {src, one}, GetParam()));
  ASSERT_EQ(parallel.num_strata(), serial.num_strata());
  for (size_t c = 0; c < serial.num_strata(); ++c) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(parallel.At(c, j).count(), serial.At(c, j).count());
      EXPECT_NEAR(parallel.At(c, j).mean(), serial.At(c, j).mean(),
                  1e-9 * std::max(1.0, std::fabs(serial.At(c, j).mean())));
      EXPECT_NEAR(parallel.At(c, j).variance_population(),
                  serial.At(c, j).variance_population(),
                  1e-6 * std::max(1.0, serial.At(c, j).variance_population()));
      EXPECT_DOUBLE_EQ(parallel.At(c, j).min(), serial.At(c, j).min());
      EXPECT_DOUBLE_EQ(parallel.At(c, j).max(), serial.At(c, j).max());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelStatsTest,
                         testing::Values(0, 1, 2, 4, 8, 16));

TEST(ParallelStatsTest2, TinyTableFallsBackToSerial) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"major"}));
  ASSERT_OK_AND_ASSIGN(const Column* gpa, t.ColumnByName("gpa"));
  StatSource src;
  src.column = gpa;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats,
                       CollectGroupStatsParallel(strat, {src}, 8));
  // 8 rows << 4096/thread: must behave exactly like serial.
  ASSERT_OK_AND_ASSIGN(GroupStatsTable serial, CollectGroupStats(strat, {src}));
  for (size_t c = 0; c < serial.num_strata(); ++c) {
    EXPECT_TRUE(stats.At(c, 0) == serial.At(c, 0));
  }
}

TEST(ParallelStatsTest2, ValidatesSourcesLikeSerial) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"major"}));
  StatSource empty;
  EXPECT_FALSE(CollectGroupStatsParallel(strat, {empty}, 4).ok());
}

}  // namespace
}  // namespace cvopt
