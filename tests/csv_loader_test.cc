// Tests for CSV ingestion.
#include <gtest/gtest.h>

#include "src/table/csv_loader.h"
#include "src/util/failpoint.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

const char kCsv[] =
    "name,age,score\n"
    "alice,30,1.5\n"
    "bob,25,2.25\n"
    "carol,41,0.75\n";

Schema ExplicitSchema() {
  return Schema({{"name", DataType::kString},
                 {"age", DataType::kInt64},
                 {"score", DataType::kDouble}});
}

TEST(CsvLoaderTest, ExplicitSchema) {
  ASSERT_OK_AND_ASSIGN(Table t, TableFromCsv(kCsv, ExplicitSchema()));
  EXPECT_EQ(t.num_rows(), 3u);
  ASSERT_OK_AND_ASSIGN(const Column* name, t.ColumnByName("name"));
  ASSERT_OK_AND_ASSIGN(const Column* age, t.ColumnByName("age"));
  ASSERT_OK_AND_ASSIGN(const Column* score, t.ColumnByName("score"));
  EXPECT_EQ(name->GetString(1), "bob");
  EXPECT_EQ(age->GetInt(2), 41);
  EXPECT_DOUBLE_EQ(score->GetDouble(0), 1.5);
}

TEST(CsvLoaderTest, InferredTypes) {
  ASSERT_OK_AND_ASSIGN(Table t, TableFromCsvInferred(kCsv));
  EXPECT_EQ(t.schema().field(0).type, DataType::kString);
  EXPECT_EQ(t.schema().field(1).type, DataType::kInt64);
  EXPECT_EQ(t.schema().field(2).type, DataType::kDouble);
  EXPECT_EQ(t.schema().field(0).name, "name");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(CsvLoaderTest, QuotedFieldsAndEscapes) {
  const char* csv =
      "a,b\n"
      "\"x,y\",1\n"
      "\"say \"\"hi\"\"\",2\n";
  ASSERT_OK_AND_ASSIGN(
      Table t, TableFromCsv(csv, Schema({{"a", DataType::kString},
                                         {"b", DataType::kInt64}})));
  ASSERT_OK_AND_ASSIGN(const Column* a, t.ColumnByName("a"));
  EXPECT_EQ(a->GetString(0), "x,y");
  EXPECT_EQ(a->GetString(1), "say \"hi\"");
}

TEST(CsvLoaderTest, CrlfAndTrailingNewlines) {
  const char* csv = "a\r\n1\r\n2\r\n";
  ASSERT_OK_AND_ASSIGN(Table t,
                       TableFromCsv(csv, Schema({{"a", DataType::kInt64}})));
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CsvLoaderTest, NoHeader) {
  CsvOptions opts;
  opts.has_header = false;
  ASSERT_OK_AND_ASSIGN(
      Table t, TableFromCsv("1,x\n2,y\n", Schema({{"n", DataType::kInt64},
                                                  {"s", DataType::kString}}),
                            opts));
  EXPECT_EQ(t.num_rows(), 2u);
  ASSERT_OK_AND_ASSIGN(Table inferred, TableFromCsvInferred("1,x\n2,y\n", opts));
  EXPECT_EQ(inferred.schema().field(0).name, "col0");
  EXPECT_EQ(inferred.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(inferred.schema().field(1).type, DataType::kString);
}

TEST(CsvLoaderTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  ASSERT_OK_AND_ASSIGN(
      Table t, TableFromCsv("a;b\n1;2\n", Schema({{"a", DataType::kInt64},
                                                  {"b", DataType::kInt64}}),
                            opts));
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(CsvLoaderTest, Errors) {
  Schema s = ExplicitSchema();
  // Wrong field count.
  EXPECT_FALSE(TableFromCsv("name,age,score\nonly,two\n", s).ok());
  // Type mismatch.
  EXPECT_FALSE(TableFromCsv("name,age,score\nal,notanint,1.0\n", s).ok());
  // Unterminated quote.
  EXPECT_FALSE(TableFromCsv("name,age,score\n\"open,1,2\n", s).ok());
  // Empty inferred input.
  EXPECT_FALSE(TableFromCsvInferred("").ok());
  // Missing file.
  EXPECT_FALSE(TableFromCsvFile("/no/such/file.csv", s).ok());
}

TEST(CsvLoaderTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cvopt_loader.csv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs(kCsv, f);
  fclose(f);
  ASSERT_OK_AND_ASSIGN(Table t, TableFromCsvFile(path, ExplicitSchema()));
  EXPECT_EQ(t.num_rows(), 3u);
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, InferenceWidensBeyondSample) {
  // Row 101 is a string but inference only looks at 2 rows -> load fails
  // cleanly rather than mis-typing.
  CsvOptions opts;
  opts.inference_rows = 2;
  std::string csv = "v\n1\n2\nnot_a_number\n";
  EXPECT_FALSE(TableFromCsvInferred(csv, opts).ok());
}

TEST(CsvLoaderTest, TruncatedReadFailpointSurfacesCleanly) {
  // The csv.read fail point stands in for a truncated file read: the
  // loader must surface a clean typed Status (no crash, no partial table)
  // and recover fully once the fault clears.
  const std::string path = testing::TempDir() + "/cvopt_loader_fp.csv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs(kCsv, f);
  fclose(f);
  ASSERT_OK(failpoint::SetForTesting("csv.read:error"));
  Result<Table> r = TableFromCsvFile(path, ExplicitSchema());
  failpoint::ClearForTesting();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  ASSERT_OK_AND_ASSIGN(Table t, TableFromCsvFile(path, ExplicitSchema()));
  EXPECT_EQ(t.num_rows(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cvopt
