// AqpServer serving tests. The load-bearing one is the differential: N
// concurrent clients hammering the served path must receive responses
// BIT-identical to direct engine calls — the wire format carries raw double
// bit patterns and the catalog's builds are deterministic functions of
// (catalog seed, key), so equality is exact, not tolerance-based. The rest
// pin the catalog-reuse contract (one shared sample answers distinct
// queries), both admission-control rejections, and that typed per-query
// failures (fail-point injected) never take the server down.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/estimate/approx_executor.h"
#include "src/exec/group_by_executor.h"
#include "src/sample/cvopt_sampler.h"
#include "src/server/aqp_server.h"
#include "src/server/client.h"
#include "src/server/sample_catalog.h"
#include "src/sql/parser.h"
#include "src/util/failpoint.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

std::string TestSocketPath(const char* tag) {
  return std::string(::testing::TempDir()) + "cvopt_server_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

// Replicates the exact sample the server's catalog builds for (sql, rate):
// same canonical spec, same budget, same deterministic seed stream.
Result<StratifiedSample> ReplicateCatalogBuild(const Table& table,
                                               const std::string& sql,
                                               double rate,
                                               uint64_t catalog_seed) {
  CVOPT_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSql(sql));
  const CatalogKey key = SampleCatalog::MakeKey(table, parsed.query, rate);
  const uint64_t budget = static_cast<uint64_t>(
      std::llround(rate * static_cast<double>(table.num_rows())));
  Rng rng(SampleCatalog::BuildSeed(catalog_seed, key));
  CvoptSampler sampler;
  return sampler.Build(table, {SampleCatalog::CanonicalSpec(parsed.query)},
                       budget, &rng);
}

void ExpectWireBitIdentical(const WireResult& got, const WireResult& want) {
  ASSERT_EQ(got.agg_labels, want.agg_labels);
  ASSERT_EQ(got.group_labels, want.group_labels);
  ASSERT_EQ(got.key_codes, want.key_codes);
  ASSERT_EQ(got.value_bits, want.value_bits);  // raw IEEE-754 bits
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : table_(MakeSkewedTable(/*groups=*/6, /*base=*/40)) {}

  // Starts a server over table_ registered as "skewed".
  void StartServer(ServerOptions options) {
    server_ = std::make_unique<AqpServer>(std::move(options));
    ASSERT_OK(server_->RegisterTable("skewed", &table_));
    ASSERT_OK(server_->Start());
  }

  Table table_;
  std::unique_ptr<AqpServer> server_;
};

TEST_F(ServerTest, StartStopIdempotent) {
  ServerOptions opts;
  opts.socket_path = TestSocketPath("startstop");
  StartServer(opts);
  EXPECT_TRUE(server_->running());
  server_->Stop();
  EXPECT_FALSE(server_->running());
  server_->Stop();  // idempotent
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, RoundTripExactAndApprox) {
  ServerOptions opts;
  opts.socket_path = TestSocketPath("roundtrip");
  StartServer(opts);

  AqpClient client;
  ASSERT_OK(client.Connect(opts.socket_path));
  std::vector<QueryRequestItem> batch(2);
  batch[0].sql = "SELECT g, AVG(v), SUM(v) FROM skewed GROUP BY g";
  batch[0].exact = true;
  batch[1].sql = "SELECT g, AVG(v), SUM(v) FROM skewed GROUP BY g";
  batch[1].sample_rate = 0.25;
  ASSERT_OK_AND_ASSIGN(ResponseEnvelope resp, client.Query(batch));
  ASSERT_EQ(resp.results.size(), 2u);
  ASSERT_OK(resp.results[0].status);
  EXPECT_EQ(resp.results[0].served_from, ServedFrom::kExact);
  EXPECT_EQ(resp.results[0].result.num_groups(), 6u);
  EXPECT_EQ(resp.results[0].result.num_aggregates(), 2u);
  ASSERT_OK(resp.results[1].status);
  EXPECT_EQ(resp.results[1].served_from, ServedFrom::kCatalogBuild);
  EXPECT_GT(resp.results[1].result.num_groups(), 0u);
  server_->Stop();
}

// The tentpole differential: concurrent clients, mixed exact/approx batches
// with per-request WHERE predicates, every response bit-identical to a
// direct serial engine call replicating the catalog's deterministic build.
TEST_F(ServerTest, ConcurrentClientsBitIdenticalToDirectEngine) {
  ScopedExecThreads threads(4);  // server and direct calls share the pool
  constexpr double kRate = 0.25;
  constexpr uint64_t kSeed = 1234;
  ServerOptions opts;
  opts.socket_path = TestSocketPath("differential");
  opts.catalog_seed = kSeed;
  opts.num_workers = 3;
  StartServer(opts);

  // Three workload-class-sharing approx queries (distinct WHERE, same
  // canonical spec) + one exact.
  const std::vector<std::string> kApproxSql = {
      "SELECT g, AVG(v), SUM(v) FROM skewed GROUP BY g",
      "SELECT g, AVG(v), SUM(v) FROM skewed WHERE g < 4 GROUP BY g",
      "SELECT g, AVG(v), SUM(v) FROM skewed WHERE v > 20 GROUP BY g",
  };
  const std::string kExactSql =
      "SELECT g, AVG(v), SUM(v) FROM skewed GROUP BY g";

  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 3;
  std::vector<std::vector<ResponseEnvelope>> responses(kClients);
  std::atomic<int> transport_failures{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        AqpClient client;
        if (!client.Connect(opts.socket_path).ok()) {
          transport_failures.fetch_add(1);
          return;
        }
        for (int b = 0; b < kBatchesPerClient; ++b) {
          std::vector<QueryRequestItem> batch;
          for (const std::string& sql : kApproxSql) {
            QueryRequestItem item;
            item.sql = sql;
            item.sample_rate = kRate;
            batch.push_back(item);
          }
          QueryRequestItem exact;
          exact.sql = kExactSql;
          exact.exact = true;
          batch.push_back(exact);
          AqpClient::Options qopts;
          qopts.tenant = "tenant-" + std::to_string(c);
          auto resp = client.Query(batch, qopts);
          if (!resp.ok()) {
            transport_failures.fetch_add(1);
            return;
          }
          responses[c].push_back(std::move(resp).value());
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  ASSERT_EQ(transport_failures.load(), 0);

  // Ground truth, computed serially after the fact.
  ASSERT_OK_AND_ASSIGN(StratifiedSample sample,
                       ReplicateCatalogBuild(table_, kApproxSql[0], kRate,
                                             kSeed));
  std::vector<WireResult> want_approx;
  for (const std::string& sql : kApproxSql) {
    ASSERT_OK_AND_ASSIGN(ParsedQuery parsed, ParseSql(sql));
    ASSERT_OK_AND_ASSIGN(QueryResult direct,
                         ExecuteApprox(sample, parsed.query));
    want_approx.push_back(FlattenResult(direct));
  }
  ASSERT_OK_AND_ASSIGN(ParsedQuery exact_parsed, ParseSql(kExactSql));
  ASSERT_OK_AND_ASSIGN(QueryResult exact_direct,
                       ExecuteExact(table_, exact_parsed.query));
  const WireResult want_exact = FlattenResult(exact_direct);

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), static_cast<size_t>(kBatchesPerClient));
    for (const ResponseEnvelope& resp : responses[c]) {
      ASSERT_EQ(resp.results.size(), kApproxSql.size() + 1);
      for (size_t q = 0; q < kApproxSql.size(); ++q) {
        ASSERT_OK(resp.results[q].status);
        ExpectWireBitIdentical(resp.results[q].result, want_approx[q]);
      }
      ASSERT_OK(resp.results.back().status);
      EXPECT_EQ(resp.results.back().served_from, ServedFrom::kExact);
      ExpectWireBitIdentical(resp.results.back().result, want_exact);
    }
  }

  // All 36 approx queries share ONE workload class: exactly one sample was
  // built, everything else hit it.
  EXPECT_EQ(server_->catalog().size(), 1u);
  EXPECT_EQ(server_->catalog().builds(), 1u);
  EXPECT_GT(server_->catalog().hits(), 0u);
  EXPECT_EQ(server_->catalog().hits() + server_->catalog().misses(),
            static_cast<uint64_t>(kClients * kBatchesPerClient *
                                  kApproxSql.size()));
  server_->Stop();
}

// Paper Table 5 reuse: queries with different predicates and sensible
// aggregate subsets canonicalize into one workload class — the catalog
// serves all of them from a single shared sample.
TEST_F(ServerTest, CatalogSharesOneSampleAcrossDistinctQueries) {
  ServerOptions opts;
  opts.socket_path = TestSocketPath("reuse");
  StartServer(opts);

  AqpClient client;
  ASSERT_OK(client.Connect(opts.socket_path));
  const std::vector<std::string> kSql = {
      "SELECT g, AVG(v), SUM(v) FROM skewed GROUP BY g",
      "SELECT g, AVG(v), SUM(v) FROM skewed WHERE g = 2 GROUP BY g",
      "SELECT g, AVG(v), SUM(v) FROM skewed WHERE v > 30 GROUP BY g",
  };
  std::vector<QueryRequestItem> batch;
  for (const std::string& sql : kSql) {
    QueryRequestItem item;
    item.sql = sql;
    item.sample_rate = 0.2;
    batch.push_back(item);
  }
  ASSERT_OK_AND_ASSIGN(ResponseEnvelope resp, client.Query(batch));
  ASSERT_EQ(resp.results.size(), kSql.size());
  EXPECT_EQ(resp.results[0].served_from, ServedFrom::kCatalogBuild);
  for (size_t q = 0; q < kSql.size(); ++q) {
    ASSERT_OK(resp.results[q].status);
    if (q > 0) EXPECT_EQ(resp.results[q].served_from, ServedFrom::kCatalogHit);
  }
  EXPECT_EQ(server_->catalog().size(), 1u);       // one shared sample...
  EXPECT_EQ(server_->catalog().hits(), kSql.size() - 1);  // ...reused
  // A different rate is a different workload class: new sample.
  QueryRequestItem other;
  other.sql = kSql[0];
  other.sample_rate = 0.1;
  ASSERT_OK_AND_ASSIGN(resp, client.Query({other}));
  ASSERT_OK(resp.results[0].status);
  EXPECT_EQ(resp.results[0].served_from, ServedFrom::kCatalogBuild);
  EXPECT_EQ(server_->catalog().size(), 2u);
  server_->Stop();
}

// Declaring a per-request memory cap above the server-wide in-flight budget
// is rejected with a typed kResourceExhausted before any work is queued.
TEST_F(ServerTest, MemoryAdmissionRejectsOversizedRequest) {
  ServerOptions opts;
  opts.socket_path = TestSocketPath("memadmit");
  opts.memory_limit_bytes = 32ull << 20;
  StartServer(opts);

  AqpClient client;
  ASSERT_OK(client.Connect(opts.socket_path));
  QueryRequestItem item;
  item.sql = "SELECT g, AVG(v) FROM skewed GROUP BY g";
  item.exact = true;
  AqpClient::Options qopts;
  qopts.memory_limit_bytes = 64ull << 20;  // over the server-wide cap
  ASSERT_OK_AND_ASSIGN(ResponseEnvelope resp, client.Query({item}, qopts));
  ASSERT_EQ(resp.results.size(), 1u);
  EXPECT_EQ(resp.results[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server_->metrics().requests_rejected.value(), 1u);
  // The rejection released its charge; a sane request still works.
  EXPECT_EQ(server_->admission_budget().used(), 0u);
  qopts.memory_limit_bytes = 8ull << 20;
  ASSERT_OK_AND_ASSIGN(resp, client.Query({item}, qopts));
  ASSERT_OK(resp.results[0].status);
  server_->Stop();
}

// With the pipeline frozen, the bounded queue fills and the next batch gets
// a typed queue-full rejection from the reader thread; unfreezing drains
// the queued batch normally.
TEST_F(ServerTest, QueueDepthAdmissionRejectsWhenFull) {
  ServerOptions opts;
  opts.socket_path = TestSocketPath("queueadmit");
  opts.max_queue = 1;
  opts.num_workers = 1;
  StartServer(opts);
  server_->PauseWorkersForTesting(true);

  QueryRequestItem item;
  item.sql = "SELECT g, AVG(v) FROM skewed GROUP BY g";
  item.exact = true;

  // First batch occupies the queue; its client blocks on the response.
  ResponseEnvelope queued_resp;
  std::atomic<bool> queued_ok{false};
  std::thread queued([&] {
    AqpClient c;
    if (!c.Connect(opts.socket_path).ok()) return;
    auto r = c.Query({item});
    if (r.ok()) {
      queued_resp = std::move(r).value();
      queued_ok.store(true);
    }
  });
  // Admission is decided on the reader thread before the response, so once
  // the queue reports depth 1 the next batch deterministically overflows.
  while (server_->RenderMetrics().find("aqp_queue_depth 1") ==
         std::string::npos) {
    std::this_thread::yield();
  }

  AqpClient overflow;
  ASSERT_OK(overflow.Connect(opts.socket_path));
  ASSERT_OK_AND_ASSIGN(ResponseEnvelope rejected, overflow.Query({item}));
  ASSERT_EQ(rejected.results.size(), 1u);
  EXPECT_EQ(rejected.results[0].status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.results[0].status.message().find("queue"),
            std::string::npos);

  server_->PauseWorkersForTesting(false);
  queued.join();
  ASSERT_TRUE(queued_ok.load());
  ASSERT_EQ(queued_resp.results.size(), 1u);
  EXPECT_OK(queued_resp.results[0].status);
  server_->Stop();
}

// A fail point firing mid-request comes back as that query's typed status;
// the server (and even the same connection) keeps serving.
TEST_F(ServerTest, FailpointAbortLeavesServerServing) {
  ServerOptions opts;
  opts.socket_path = TestSocketPath("failpoint");
  StartServer(opts);

  AqpClient client;
  ASSERT_OK(client.Connect(opts.socket_path));
  QueryRequestItem item;
  item.sql = "SELECT g, AVG(v), SUM(v) FROM skewed GROUP BY g";
  item.exact = true;

  ASSERT_OK(failpoint::SetForTesting("exec.groupby.alloc:deadline"));
  ASSERT_OK_AND_ASSIGN(ResponseEnvelope resp, client.Query({item}));
  failpoint::ClearForTesting();
  ASSERT_EQ(resp.results.size(), 1u);
  EXPECT_EQ(resp.results[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server_->metrics().queries_aborted.value(), 1u);

  // Same client, same query, fail point disarmed: served fine.
  ASSERT_TRUE(server_->running());
  ASSERT_OK_AND_ASSIGN(resp, client.Query({item}));
  ASSERT_OK(resp.results[0].status);
  EXPECT_EQ(resp.results[0].result.num_groups(), 6u);

  // An injected hard error is likewise contained as kInternal.
  ASSERT_OK(failpoint::SetForTesting("exec.groupby.alloc:error"));
  ASSERT_OK_AND_ASSIGN(resp, client.Query({item}));
  failpoint::ClearForTesting();
  EXPECT_EQ(resp.results[0].status.code(), StatusCode::kInternal);
  EXPECT_EQ(server_->metrics().queries_failed.value(), 1u);
  ASSERT_OK_AND_ASSIGN(resp, client.Query({item}));
  ASSERT_OK(resp.results[0].status);
  server_->Stop();
}

// Bad SQL and unknown tables are per-query failures, not connection or
// server failures.
TEST_F(ServerTest, MalformedQueriesAreContained) {
  ServerOptions opts;
  opts.socket_path = TestSocketPath("badsql");
  StartServer(opts);

  AqpClient client;
  ASSERT_OK(client.Connect(opts.socket_path));
  std::vector<QueryRequestItem> batch(3);
  batch[0].sql = "SELECT FROM nothing";  // parse error
  batch[1].sql = "SELECT g, AVG(v) FROM missing GROUP BY g";  // bad table
  batch[1].exact = true;
  batch[2].sql = "SELECT g, AVG(v) FROM skewed GROUP BY g";  // fine
  batch[2].exact = true;
  ASSERT_OK_AND_ASSIGN(ResponseEnvelope resp, client.Query(batch));
  ASSERT_EQ(resp.results.size(), 3u);
  EXPECT_EQ(resp.results[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(resp.results[1].status.code(), StatusCode::kNotFound);
  EXPECT_OK(resp.results[2].status);
  server_->Stop();
}

TEST_F(ServerTest, MetricsScrapeAndShutdownRequest) {
  ServerOptions opts;
  opts.socket_path = TestSocketPath("metrics");
  StartServer(opts);

  AqpClient client;
  ASSERT_OK(client.Connect(opts.socket_path));
  QueryRequestItem item;
  item.sql = "SELECT g, AVG(v) FROM skewed GROUP BY g";
  item.sample_rate = 0.2;
  ASSERT_OK_AND_ASSIGN(ResponseEnvelope resp, client.Query({item}));
  ASSERT_OK(resp.results[0].status);

  ASSERT_OK_AND_ASSIGN(std::string metrics, client.Metrics());
  EXPECT_NE(metrics.find("aqp_requests_received_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("aqp_queries_served_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("aqp_sample_builds_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("aqp_catalog_samples 1"), std::string::npos);
  EXPECT_NE(metrics.find("aqp_query_latency_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("aqp_registered_tables 1"), std::string::npos);

  // kShutdown wakes a Wait()ing owner; teardown still answers in-flight
  // work first (this response already arrived by protocol ordering).
  std::thread waiter([&] { server_->Wait(); });
  ASSERT_OK(client.RequestShutdown());
  waiter.join();
  EXPECT_FALSE(server_->running());
}

// Catalog LRU eviction. Builds are deterministic in (seed, key), so a
// throwaway catalog measures each key's sample size first and the scenario
// catalog then gets budgets placed exactly between the interesting totals.
TEST(SampleCatalogEvictionTest, EvictsLruAndKeepsTouchedEntries) {
  const Table table = MakeSkewedTable(/*groups=*/6, /*base=*/40);
  ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                       ParseSql("SELECT g, AVG(v) FROM t GROUP BY g"));
  const QuerySpec& q = parsed.query;
  const double r1 = 0.20, r2 = 0.25, r3 = 0.30, r4 = 0.10;

  uint64_t n1 = 0, n2 = 0, n3 = 0, n4 = 0;
  {
    SampleCatalog probe(7);
    ASSERT_OK(probe.GetOrBuild(table, q, r1).status());
    n1 = probe.resident_rows();
    ASSERT_OK(probe.GetOrBuild(table, q, r2).status());
    n2 = probe.resident_rows() - n1;
    ASSERT_OK(probe.GetOrBuild(table, q, r3).status());
    n3 = probe.resident_rows() - n1 - n2;
    ASSERT_OK(probe.GetOrBuild(table, q, r4).status());
    n4 = probe.resident_rows() - n1 - n2 - n3;
    ASSERT_GT(n1, 0u);
    ASSERT_LT(n4, n3);  // the second scenario relies on one eviction only
  }

  SampleCatalog catalog(7);
  uint64_t listener_calls = 0;
  catalog.SetEvictionListener([&] { ++listener_calls; });

  // Publishing r3 pushes the total one row past the budget: the LRU entry
  // (r1) goes, and one eviction suffices.
  catalog.SetRowBudgetForTesting(n1 + n2 + n3 - 1);
  ASSERT_OK(catalog.GetOrBuild(table, q, r1).status());
  ASSERT_OK(catalog.GetOrBuild(table, q, r2).status());
  EXPECT_EQ(catalog.evictions(), 0u);
  ASSERT_OK(catalog.GetOrBuild(table, q, r3).status());
  EXPECT_EQ(catalog.evictions(), 1u);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.resident_rows(), n2 + n3);

  // A hit touches: after touching r2, publishing r4 over budget must evict
  // r3 (the recency tail), not the older-published r2.
  bool hit = false;
  ASSERT_OK(catalog.GetOrBuild(table, q, r2, &hit).status());
  EXPECT_TRUE(hit);
  catalog.SetRowBudgetForTesting(n2 + n3);
  ASSERT_OK(catalog.GetOrBuild(table, q, r4).status());
  EXPECT_EQ(catalog.evictions(), 2u);
  EXPECT_EQ(catalog.resident_rows(), n2 + n4);
  ASSERT_OK(catalog.GetOrBuild(table, q, r2, &hit).status());
  EXPECT_TRUE(hit);
  ASSERT_OK(catalog.GetOrBuild(table, q, r4, &hit).status());
  EXPECT_TRUE(hit);
  // The evicted key simply rebuilds on next use.
  const uint64_t builds_before = catalog.builds();
  ASSERT_OK(catalog.GetOrBuild(table, q, r3, &hit).status());
  EXPECT_FALSE(hit);
  EXPECT_EQ(catalog.builds(), builds_before + 1);
  EXPECT_EQ(listener_calls, catalog.evictions());
}

TEST(SampleCatalogEvictionTest, NewestPublishAlwaysSurvivesItsAdmission) {
  const Table table = MakeSkewedTable(/*groups=*/6, /*base=*/40);
  ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                       ParseSql("SELECT g, SUM(v) FROM t GROUP BY g"));
  SampleCatalog catalog(7);
  catalog.SetRowBudgetForTesting(1);  // smaller than any sample
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const StratifiedSample> s,
                       catalog.GetOrBuild(table, parsed.query, 0.25));
  EXPECT_GT(s->size(), 1u);
  EXPECT_EQ(catalog.size(), 1u);  // kept despite busting the budget
  EXPECT_EQ(catalog.evictions(), 0u);
  // The next publish displaces it (it is now the LRU tail).
  ASSERT_OK(catalog.GetOrBuild(table, parsed.query, 0.5).status());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.evictions(), 1u);
}

TEST(SampleCatalogEvictionTest, EvictionCounterRendersInMetrics) {
  ServerMetrics metrics;
  metrics.catalog_evictions.Inc();
  const std::string out = metrics.RenderPrometheus();
  EXPECT_NE(out.find("aqp_catalog_evictions_total 1"), std::string::npos);
}

}  // namespace
}  // namespace cvopt
