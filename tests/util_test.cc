// Tests for src/util: Status/Result, Rng, string utilities, CSV, hashing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "src/util/csv.h"
#include "src/util/env.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/string_util.h"
#include "src/util/timer.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubler(Result<int> in) {
  CVOPT_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  auto ok = Doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = Doubler(Status::OutOfRange("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Uniform(bound), static_cast<uint64_t>(bound));
    }
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanIsHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == child.Next64());
  EXPECT_LT(same, 3);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2.0");
  EXPECT_EQ(FormatDouble(0.125, 6), "0.125");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("hello", "hello world"));
  EXPECT_FALSE(StartsWith("hello", "x"));
}

TEST(CsvTest, RoundTripBasic) {
  CsvWriter w({"a", "b"});
  ASSERT_OK(w.AddRow({"1", "2"}));
  ASSERT_OK(w.AddRow({"x", "y"}));
  EXPECT_EQ(w.ToString(), "a,b\n1,2\nx,y\n");
  EXPECT_EQ(w.num_rows(), 2u);
}

TEST(CsvTest, RejectsWrongWidth) {
  CsvWriter w({"a", "b"});
  EXPECT_FALSE(w.AddRow({"1"}).ok());
  EXPECT_FALSE(w.AddRow({"1", "2", "3"}).ok());
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter w({"f"});
  ASSERT_OK(w.AddRow({"a,b"}));
  ASSERT_OK(w.AddRow({"say \"hi\""}));
  EXPECT_EQ(w.ToString(), "f\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, WritesFile) {
  CsvWriter w({"x"});
  ASSERT_OK(w.AddRow({"1"}));
  const std::string path = testing::TempDir() + "/cvopt_csv_test.csv";
  ASSERT_OK(w.WriteFile(path));
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  const size_t got = fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  EXPECT_EQ(std::string(buf, got), "x\n1\n");
}

TEST(HashTest, MixChangesValue) {
  EXPECT_NE(HashMix64(1), 1u);
  EXPECT_NE(HashMix64(1), HashMix64(2));
}

TEST(HashTest, CombineOrderSensitive) {
  const uint64_t a = HashCombine(HashCombine(0, 1), 2);
  const uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashTest, LowCollisionOnSmallKeys) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    seen.insert(HashCombine(0, i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms >= s numerically
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

TEST(ParseEnvIntTest, ValidValuesParse) {
  setenv("CVOPT_TEST_KNOB", "42", 1);
  EXPECT_EQ(ParseEnvInt("CVOPT_TEST_KNOB"), std::optional<int64_t>(42));
  setenv("CVOPT_TEST_KNOB", "-7", 1);
  EXPECT_EQ(ParseEnvInt("CVOPT_TEST_KNOB"), std::optional<int64_t>(-7));
  setenv("CVOPT_TEST_KNOB", "0", 1);
  EXPECT_EQ(ParseEnvInt("CVOPT_TEST_KNOB"), std::optional<int64_t>(0));
  // Leading whitespace and an explicit sign are strtoll-standard.
  setenv("CVOPT_TEST_KNOB", "  +13", 1);
  EXPECT_EQ(ParseEnvInt("CVOPT_TEST_KNOB"), std::optional<int64_t>(13));
  unsetenv("CVOPT_TEST_KNOB");
}

TEST(ParseEnvIntTest, UnsetAndEmptyAreNullopt) {
  unsetenv("CVOPT_TEST_KNOB");
  EXPECT_FALSE(ParseEnvInt("CVOPT_TEST_KNOB").has_value());
  setenv("CVOPT_TEST_KNOB", "", 1);
  EXPECT_FALSE(ParseEnvInt("CVOPT_TEST_KNOB").has_value());
  unsetenv("CVOPT_TEST_KNOB");
}

TEST(ParseEnvIntTest, MalformedValuesRejected) {
  // Regression: CVOPT_THREADS=4x used to strtol to 4 and CVOPT_THREADS=abc
  // silently fell back — both now reject (and warn once on stderr).
  const char* bad[] = {"4x",   "abc", "1.5",  "12 ",  "0x10",
                       "--3",  "+",   "-",    "1e3",  "99999999999999999999"};
  for (const char* v : bad) {
    setenv("CVOPT_TEST_KNOB", v, 1);
    EXPECT_FALSE(ParseEnvInt("CVOPT_TEST_KNOB").has_value()) << v;
  }
  unsetenv("CVOPT_TEST_KNOB");
}

}  // namespace
}  // namespace cvopt
