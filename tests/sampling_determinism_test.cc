// Golden-digest determinism tests for the sampling layer. The contract:
// for a fixed seed, every sampler's drawn row-id set is a pure function of
// the seed — independent of CVOPT_THREADS (ExecOptions::num_threads), the
// morsel grain, and any scheduler interleaving. Each sampler's digest is
// compared across thread counts {1, 2, 3, 8} AND against a checked-in
// golden value, so a future scheduler change that silently reshuffles
// samples (re-ordering reservoir offers, re-chunking the statistics pass,
// perturbing an allocation by one row) fails loudly here.
//
// The input table is built from integer arithmetic only (values are
// integer-valued doubles, no transcendental functions), so every statistic
// feeding the CVOPT/RL allocations is an exact IEEE computation and the
// digests are stable wherever IEEE doubles are.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/exec/parallel.h"
#include "src/sample/congress_sampler.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/rl_sampler.h"
#include "src/sample/senate_sampler.h"
#include "src/sample/streaming_cvopt_sampler.h"
#include "src/sample/uniform_sampler.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

// FNV-1a over the sorted row ids: a digest of the drawn row-id *set*
// (assembly order is already pinned by the stratum-major layout, but the
// set is the statistical object the contract protects).
uint64_t DigestRows(std::vector<uint32_t> rows) {
  std::sort(rows.begin(), rows.end());
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t r : rows) {
    h = (h ^ r) * 1099511628211ULL;
  }
  return h;
}

// 6600 rows, 10 x 5 strata with sizes 24*(g+1), integer-valued doubles.
const Table& DigestTable() {
  static const Table* t = [] {
    Schema schema({{"g", DataType::kString},
                   {"h", DataType::kInt64},
                   {"v", DataType::kDouble}});
    TableBuilder b(schema);
    Rng gen(101);
    for (int g = 0; g < 10; ++g) {
      const std::string label = "g" + std::to_string(g);
      const int n = (g + 1) * 120;
      for (int i = 0; i < n; ++i) {
        const int64_t h = static_cast<int64_t>(i % 5);
        // Integer-valued doubles with per-group mean 100*(g+1) and spread
        // growing for small groups — skew without transcendentals.
        const double v = static_cast<double>(
            100 * (g + 1) +
            static_cast<int64_t>(gen.Uniform(40 * (10 - g))) - 20 * (10 - g));
        CVOPT_CHECK(b.AppendRow({Value(label), Value(h), Value(v)}).ok(),
                    "append failed");
      }
    }
    return new Table(std::move(b).Finish());
  }();
  return *t;
}

QuerySpec DigestQuery() {
  QuerySpec q;
  q.group_by = {"g", "h"};
  q.aggregates = {AggSpec::Avg("v")};
  return q;
}

struct GoldenCase {
  const char* name;
  const Sampler* sampler;
  uint64_t golden;
};

uint64_t BuildDigest(const Sampler& sampler, int threads) {
  ScopedExecThreads scope(threads);
  Rng rng(424242);
  auto s = sampler.Build(DigestTable(), {DigestQuery()}, 660, &rng);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return DigestRows(s->rows());
}

TEST(SamplingDeterminismTest, DigestsMatchAcrossThreadCountsAndGoldens) {
  static const UniformSampler uniform;
  static const SenateSampler senate;
  static const CongressSampler congress;
  static const RlSampler rl;
  static const CvoptSampler cvopt;
  static const StreamingCvoptSampler streaming(/*replan_interval=*/500);
  const GoldenCase cases[] = {
      {"Uniform", &uniform, 0x14de0088eb5083a9ULL},
      {"Senate", &senate, 0x576330061d27bd96ULL},
      {"Congress", &congress, 0x7812620bcf9d98fbULL},
      {"RL", &rl, 0x8219d6538f72d28bULL},
      {"CVOPT", &cvopt, 0xf1bdb640f1fdca7cULL},
      {"CVOPT-STREAM", &streaming, 0xe5e81e3ea313dcebULL},
  };
  for (const GoldenCase& c : cases) {
    const uint64_t serial = BuildDigest(*c.sampler, 1);
    for (int threads : {2, 3, 8}) {
      EXPECT_EQ(BuildDigest(*c.sampler, threads), serial)
          << c.name << " reshuffled at " << threads << " threads";
    }
    EXPECT_EQ(serial, c.golden)
        << c.name << ": drawn row set changed for a fixed seed; if the new "
        << "sampling behaviour is intended, repin the golden to 0x" << std::hex
        << serial;
  }
}

TEST(SamplingDeterminismTest, DigestIndependentOfMorselGrain) {
  // Chunk boundaries must never leak into the draw: sweep the grain from
  // per-row morsels to a single chunk.
  static const CvoptSampler cvopt;
  uint64_t first = 0;
  bool have_first = false;
  for (size_t grain : {size_t{1}, size_t{64}, size_t{512}, size_t{100000}}) {
    ScopedExecThreads scope(8, grain);
    Rng rng(424242);
    auto s = cvopt.Build(DigestTable(), {DigestQuery()}, 660, &rng);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    const uint64_t d = DigestRows(s->rows());
    if (!have_first) {
      first = d;
      have_first = true;
    } else {
      EXPECT_EQ(d, first) << "grain " << grain;
    }
  }
}

TEST(SamplingDeterminismTest, RepeatedBuildsFromSameSeedAreIdentical) {
  // Rows AND weights, in emission order — the full artifact, not just the
  // set digest.
  static const SenateSampler senate;
  ScopedExecThreads scope(3);
  Rng rng1(777);
  Rng rng2(777);
  ASSERT_OK_AND_ASSIGN(StratifiedSample a,
                       senate.Build(DigestTable(), {DigestQuery()}, 500, &rng1));
  ASSERT_OK_AND_ASSIGN(StratifiedSample b,
                       senate.Build(DigestTable(), {DigestQuery()}, 500, &rng2));
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(RngForStratumTest, PureFunctionOfSeedAndStratum) {
  Rng a = Rng::ForStratum(42, 7);
  Rng b = Rng::ForStratum(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngForStratumTest, DistinctStrataYieldDistinctStreams) {
  // Sibling streams from one seed must differ pairwise (first outputs all
  // distinct across a wide id range, including huge ids).
  std::vector<uint64_t> firsts;
  for (uint64_t id : {0ULL, 1ULL, 2ULL, 1000ULL, 1ULL << 32, ~0ULL}) {
    firsts.push_back(Rng::ForStratum(9, id).Next64());
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_TRUE(std::adjacent_find(firsts.begin(), firsts.end()) ==
              firsts.end());
}

TEST(RngForStratumTest, DerivationDoesNotTouchParent) {
  Rng parent(5);
  Rng mirror(5);
  (void)Rng::ForStratum(123, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(parent.Next64(), mirror.Next64());
}

}  // namespace
}  // namespace cvopt
