// Tests for the synthetic dataset generators: schemas, sizes, and the
// statistical properties the experiments rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/core/stratification.h"
#include "src/datagen/bikes_gen.h"
#include "src/datagen/distributions.h"
#include "src/datagen/openaq_gen.h"
#include "src/datagen/tpch_gen.h"
#include "src/datagen/zipf.h"
#include "src/exec/group_by_executor.h"
#include "src/stats/stats_collector.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(100, 1.2);
  double sum = 0;
  for (size_t k = 0; k < 100; ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(z.Pmf(1000), 0.0);
}

TEST(ZipfTest, SkewOrdersProbabilities) {
  ZipfDistribution z(10, 1.0);
  for (size_t k = 1; k < 10; ++k) EXPECT_LT(z.Pmf(k), z.Pmf(k - 1));
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfDistribution z(8, 0.0);
  for (size_t k = 0; k < 8; ++k) EXPECT_NEAR(z.Pmf(k), 0.125, 1e-12);
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  ZipfDistribution z(20, 1.1);
  Rng rng(101);
  std::vector<int> hits(20, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits[z.Sample(&rng)]++;
  for (size_t k = 0; k < 20; ++k) {
    const double expect = n * z.Pmf(k);
    EXPECT_NEAR(hits[k], expect, 5 * std::sqrt(expect) + 5) << "k=" << k;
  }
}

TEST(DistributionsTest, LognormalMeanCvCalibrated) {
  Rng rng(103);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) {
    s.Add(SampleLognormalMeanCv(&rng, 50.0, 0.8));
  }
  EXPECT_NEAR(s.mean(), 50.0, 1.0);
  EXPECT_NEAR(s.cv(), 0.8, 0.03);
}

TEST(DistributionsTest, ParetoBounds) {
  Rng rng(107);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(SamplePareto(&rng, 3.0, 2.0), 3.0);
  }
}

TEST(DistributionsTest, ExponentialMean) {
  Rng rng(109);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.Add(SampleExponential(&rng, 0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(OpenAqTest, SchemaAndSize) {
  OpenAqOptions opts;
  opts.num_rows = 50000;
  Table t = GenerateOpenAq(opts);
  EXPECT_EQ(t.num_rows(), 50000u);
  for (const char* col : {"country", "parameter", "unit", "value", "latitude",
                          "year", "month", "hour"}) {
    EXPECT_TRUE(t.schema().HasColumn(col)) << col;
  }
}

TEST(OpenAqTest, GroupSizesAreSkewed) {
  OpenAqOptions opts;
  opts.num_rows = 100000;
  Table t = GenerateOpenAq(opts);
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {"country"}));
  uint64_t mn = UINT64_MAX, mx = 0;
  for (uint64_t sz : s.sizes()) {
    mn = std::min(mn, sz);
    mx = std::max(mx, sz);
  }
  EXPECT_GT(mx, mn * 10) << "country sizes should be heavily skewed";
}

TEST(OpenAqTest, GroupCvsAreSpread) {
  OpenAqOptions opts;
  opts.num_rows = 100000;
  Table t = GenerateOpenAq(opts);
  ASSERT_OK_AND_ASSIGN(Stratification s,
                       Stratification::Build(t, {"country", "parameter"}));
  ASSERT_OK_AND_ASSIGN(const Column* v, t.ColumnByName("value"));
  StatSource src;
  src.column = v;
  ASSERT_OK_AND_ASSIGN(GroupStatsTable stats, CollectGroupStats(s, {src}));
  double min_cv = 1e9, max_cv = 0;
  for (size_t c = 0; c < s.num_strata(); ++c) {
    if (stats.At(c, 0).count() < 100) continue;
    min_cv = std::min(min_cv, stats.At(c, 0).cv());
    max_cv = std::max(max_cv, stats.At(c, 0).cv());
  }
  EXPECT_GT(max_cv, 4 * min_cv) << "per-group CVs should vary widely";
}

TEST(OpenAqTest, ValuesPositiveAndBcStraddlesThreshold) {
  OpenAqOptions opts;
  opts.num_rows = 100000;
  Table t = GenerateOpenAq(opts);
  ASSERT_OK_AND_ASSIGN(const Column* v, t.ColumnByName("value"));
  for (size_t r = 0; r < 1000; ++r) EXPECT_GT(v->GetDouble(r), 0.0);

  QuerySpec q;
  q.aggregates = {
      AggSpec::CountIf(Predicate::And(
          Predicate::Compare("parameter", CompareOp::kEq, "bc"),
          Predicate::Compare("value", CompareOp::kGt, 0.04))),
      AggSpec::CountIf(Predicate::And(
          Predicate::Compare("parameter", CompareOp::kEq, "bc"),
          Predicate::Compare("value", CompareOp::kLe, 0.04)))};
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  EXPECT_GT(res.value(0, 0), 100.0);  // some bc above threshold
  EXPECT_GT(res.value(0, 1), 100.0);  // some bc below
}

TEST(OpenAqTest, YearsCoverRange) {
  OpenAqOptions opts;
  opts.num_rows = 20000;
  Table t = GenerateOpenAq(opts);
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {"year"}));
  EXPECT_EQ(s.num_strata(), 4u);  // 2015..2018
}

TEST(OpenAqTest, Deterministic) {
  OpenAqOptions opts;
  opts.num_rows = 1000;
  Table a = GenerateOpenAq(opts);
  Table b = GenerateOpenAq(opts);
  ASSERT_OK_AND_ASSIGN(const Column* va, a.ColumnByName("value"));
  ASSERT_OK_AND_ASSIGN(const Column* vb, b.ColumnByName("value"));
  for (size_t r = 0; r < 1000; ++r) {
    EXPECT_DOUBLE_EQ(va->GetDouble(r), vb->GetDouble(r));
  }
}

TEST(BikesTest, SchemaAndStations) {
  BikesOptions opts;
  opts.num_rows = 50000;
  Table t = GenerateBikes(opts);
  EXPECT_EQ(t.num_rows(), 50000u);
  for (const char* col : {"from_station_id", "year", "trip_duration", "age",
                          "gender", "month", "hour"}) {
    EXPECT_TRUE(t.schema().HasColumn(col)) << col;
  }
  ASSERT_OK_AND_ASSIGN(const Column* st, t.ColumnByName("from_station_id"));
  for (size_t r = 0; r < 1000; ++r) {
    EXPECT_GE(st->GetInt(r), 1);
    EXPECT_LE(st->GetInt(r), 619);
  }
}

TEST(BikesTest, BadAgeFractionApproximatelyHonored) {
  BikesOptions opts;
  opts.num_rows = 100000;
  opts.bad_age_fraction = 0.05;
  Table t = GenerateBikes(opts);
  ASSERT_OK_AND_ASSIGN(const Column* age, t.ColumnByName("age"));
  size_t bad = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) bad += age->GetInt(r) <= 0;
  EXPECT_NEAR(static_cast<double>(bad) / t.num_rows(), 0.05, 0.005);
}

TEST(BikesTest, DurationsPositiveAndYearsValid) {
  BikesOptions opts;
  opts.num_rows = 20000;
  Table t = GenerateBikes(opts);
  ASSERT_OK_AND_ASSIGN(const Column* dur, t.ColumnByName("trip_duration"));
  ASSERT_OK_AND_ASSIGN(const Column* year, t.ColumnByName("year"));
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GE(dur->GetDouble(r), 60.0);
    EXPECT_GE(year->GetInt(r), 2016);
    EXPECT_LE(year->GetInt(r), 2018);
  }
}

TEST(TpchTest, SchemaAndDomains) {
  TpchOptions opts;
  opts.num_rows = 20000;
  Table t = GenerateTpchLineitem(opts);
  EXPECT_EQ(t.num_rows(), 20000u);
  ASSERT_OK_AND_ASSIGN(const Column* rf, t.ColumnByName("returnflag"));
  EXPECT_LE(rf->dictionary().size(), 3u);
  ASSERT_OK_AND_ASSIGN(const Column* sm, t.ColumnByName("shipmode"));
  EXPECT_EQ(sm->dictionary().size(), 7u);
  ASSERT_OK_AND_ASSIGN(const Column* qty, t.ColumnByName("quantity"));
  for (size_t r = 0; r < 1000; ++r) {
    EXPECT_GE(qty->GetDouble(r), 1.0);
    EXPECT_LE(qty->GetDouble(r), 50.0);
  }
  ASSERT_OK_AND_ASSIGN(const Column* disc, t.ColumnByName("discount"));
  for (size_t r = 0; r < 1000; ++r) {
    EXPECT_GE(disc->GetDouble(r), 0.0);
    EXPECT_LE(disc->GetDouble(r), 0.10 + 1e-12);
  }
}

}  // namespace
}  // namespace cvopt
