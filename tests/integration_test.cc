// End-to-end integration tests reproducing the paper's qualitative claims
// at test scale: CVOPT beats Uniform/Senate on max error for skewed data,
// samples are reusable across predicates, and CVOPT-INF trades median error
// for max error.
#include <gtest/gtest.h>

#include <cmath>

#include "src/aqp/engine.h"
#include "src/datagen/openaq_gen.h"
#include "src/sample/congress_sampler.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/rl_sampler.h"
#include "src/sample/senate_sampler.h"
#include "src/sample/uniform_sampler.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

class IntegrationTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    OpenAqOptions opts;
    opts.num_rows = 200000;
    table_ = new Table(GenerateOpenAq(opts));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static QuerySpec Aq3Like() {
    QuerySpec q;
    q.name = "AQ3";
    q.group_by = {"country", "parameter"};
    q.aggregates = {AggSpec::Avg("value")};
    return q;
  }

  struct RepStats {
    double max_err = 0;
    double avg_err = 0;
    double median = 0;
    double missing = 0;
  };

  // Average of `reps` independent sample draws, mirroring the paper's
  // "average of 5 identical and independent repetitions".
  static RepStats AveragedErrors(const Sampler& sampler,
                                 const std::vector<QuerySpec>& build_queries,
                                 double rate, const QuerySpec& eval_query,
                                 int reps, uint64_t seed) {
    RepStats out;
    for (int rep = 0; rep < reps; ++rep) {
      AqpEngine engine(table_, seed + rep);
      Status st = engine.BuildSample("s", sampler, build_queries, rate);
      CVOPT_CHECK(st.ok(), "build failed");
      auto rep_result = engine.Evaluate("s", eval_query);
      CVOPT_CHECK(rep_result.ok(), "evaluate failed");
      out.max_err += rep_result->MaxError() / reps;
      out.avg_err += rep_result->AvgError() / reps;
      out.median += rep_result->Percentile(0.5) / reps;
      out.missing += static_cast<double>(rep_result->missing_groups) / reps;
    }
    return out;
  }

  static Table* table_;
};

Table* IntegrationTest::table_ = nullptr;

TEST_F(IntegrationTest, CvoptBeatsUniformOnMaxError) {
  AqpEngine engine(table_, 1);
  CvoptSampler cvopt;
  UniformSampler uniform;
  const QuerySpec q = Aq3Like();
  ASSERT_OK(engine.BuildSample("cvopt", cvopt, {q}, 0.01));
  ASSERT_OK(engine.BuildSample("uniform", uniform, {q}, 0.01));
  ASSERT_OK_AND_ASSIGN(ErrorReport cvopt_rep, engine.Evaluate("cvopt", q));
  ASSERT_OK_AND_ASSIGN(ErrorReport uni_rep, engine.Evaluate("uniform", q));
  EXPECT_LT(cvopt_rep.MaxError(), uni_rep.MaxError())
      << "CVOPT: " << cvopt_rep.ToString() << "\nUniform: " << uni_rep.ToString();
  // Uniform misses small groups at 1%.
  EXPECT_GT(uni_rep.missing_groups, 0u);
  EXPECT_EQ(cvopt_rep.missing_groups, 0u);
}

TEST_F(IntegrationTest, CvoptAtLeastMatchesSenateAndCongress) {
  CvoptSampler cvopt;
  SenateSampler senate;
  CongressSampler congress;
  const QuerySpec q = Aq3Like();
  const RepStats c = AveragedErrors(cvopt, {q}, 0.01, q, 5, 200);
  const RepStats s = AveragedErrors(senate, {q}, 0.01, q, 5, 200);
  const RepStats g = AveragedErrors(congress, {q}, 0.01, q, 5, 200);
  // Averaged over draws, CVOPT's average error should not be meaningfully
  // worse than either frequency-only baseline (it optimizes the l2 of CVs,
  // so the realized *max* remains noisy on heavy-tailed data).
  EXPECT_LT(c.avg_err, s.avg_err * 1.15);
  EXPECT_LT(c.avg_err, g.avg_err * 1.15);
}

TEST_F(IntegrationTest, SampleReusableAcrossPredicates) {
  CvoptSampler cvopt;
  const QuerySpec q = Aq3Like();
  // Same sample answers a 50%-selectivity variant it was not built for.
  QuerySpec filtered = q;
  filtered.where = Predicate::Between("hour", 0, 11);
  const RepStats rep = AveragedErrors(cvopt, {q}, 0.02, filtered, 5, 300);
  EXPECT_LT(rep.median, 0.35);
  EXPECT_LT(rep.avg_err, 0.6);
}

TEST_F(IntegrationTest, ErrorDecreasesWithSampleRate) {
  AqpEngine engine(table_, 4);
  CvoptSampler cvopt;
  const QuerySpec q = Aq3Like();
  ASSERT_OK(engine.BuildSample("small", cvopt, {q}, 0.002));
  ASSERT_OK(engine.BuildSample("large", cvopt, {q}, 0.05));
  ASSERT_OK_AND_ASSIGN(ErrorReport small, engine.Evaluate("small", q));
  ASSERT_OK_AND_ASSIGN(ErrorReport large, engine.Evaluate("large", q));
  EXPECT_LT(large.AvgError(), small.AvgError());
}

TEST_F(IntegrationTest, CvoptInfLowersMaxVsMedianTradeoff) {
  // On a SASG query, CVOPT-INF should not have a much larger average max
  // error than CVOPT (Section 6.6; per-draw maxima are noisy on
  // heavy-tailed data, so compare 5-rep averages with slack).
  QuerySpec q;
  q.name = "sasg";
  q.group_by = {"country"};
  q.aggregates = {AggSpec::Avg("value")};
  CvoptSampler l2;
  AllocatorOptions inf_opts;
  inf_opts.norm = CvNorm::kLinf;
  CvoptSampler linf(inf_opts);
  const RepStats r2 = AveragedErrors(l2, {q}, 0.01, q, 5, 500);
  const RepStats ri = AveragedErrors(linf, {q}, 0.01, q, 5, 500);
  EXPECT_LT(ri.max_err, r2.max_err * 2.0 + 0.10);
  // Both cover every group.
  EXPECT_DOUBLE_EQ(ri.missing, 0.0);
  EXPECT_DOUBLE_EQ(r2.missing, 0.0);
}

TEST_F(IntegrationTest, MasgJointOptimization) {
  // AQ2-like: multiple aggregates sharing a group-by.
  AqpEngine engine(table_, 6);
  QuerySpec q;
  q.name = "AQ2";
  q.group_by = {"country", "parameter", "unit"};
  q.aggregates = {AggSpec::Sum("value"), AggSpec::Count()};
  CvoptSampler cvopt;
  UniformSampler uniform;
  ASSERT_OK(engine.BuildSample("cvopt", cvopt, {q}, 0.01));
  ASSERT_OK(engine.BuildSample("uniform", uniform, {q}, 0.01));
  ASSERT_OK_AND_ASSIGN(ErrorReport c, engine.Evaluate("cvopt", q));
  ASSERT_OK_AND_ASSIGN(ErrorReport u, engine.Evaluate("uniform", q));
  EXPECT_LT(c.MaxError(), u.MaxError());
}

TEST_F(IntegrationTest, MamgFinestStratificationServesBothQueries) {
  AqpEngine engine(table_, 7);
  QuerySpec q1;
  q1.group_by = {"country"};
  q1.aggregates = {AggSpec::Avg("value")};
  QuerySpec q2;
  q2.group_by = {"parameter"};
  q2.aggregates = {AggSpec::Avg("latitude")};
  CvoptSampler cvopt;
  ASSERT_OK(engine.BuildSample("joint", cvopt, {q1, q2}, 0.01));
  ASSERT_OK_AND_ASSIGN(ErrorReport r1, engine.Evaluate("joint", q1));
  ASSERT_OK_AND_ASSIGN(ErrorReport r2, engine.Evaluate("joint", q2));
  EXPECT_EQ(r1.missing_groups, 0u);
  EXPECT_EQ(r2.missing_groups, 0u);
  EXPECT_LT(r1.AvgError(), 0.15);
  EXPECT_LT(r2.AvgError(), 0.15);
}

TEST_F(IntegrationTest, WeightedAggregateShiftsAccuracy) {
  // Fig 2's mechanism: boosting one aggregate's weight lowers its error
  // relative to a run where the other aggregate is boosted.
  AqpEngine engine(table_, 8);
  QuerySpec favor_first;
  favor_first.group_by = {"country"};
  favor_first.aggregates = {AggSpec::Avg("value", 0.9),
                            AggSpec::Avg("latitude", 0.1)};
  QuerySpec favor_second;
  favor_second.group_by = {"country"};
  favor_second.aggregates = {AggSpec::Avg("value", 0.1),
                             AggSpec::Avg("latitude", 0.9)};
  CvoptSampler cvopt;
  ASSERT_OK(engine.BuildSample("w1", cvopt, {favor_first}, 0.005));
  ASSERT_OK(engine.BuildSample("w2", cvopt, {favor_second}, 0.005));

  QuerySpec eval;  // unweighted evaluation query, same shape
  eval.group_by = {"country"};
  eval.aggregates = {AggSpec::Avg("value"), AggSpec::Avg("latitude")};
  ASSERT_OK_AND_ASSIGN(QueryResult exact, engine.AnswerExact(eval));
  auto err_of = [&](const std::string& sample, size_t agg) -> double {
    auto approx = engine.AnswerApprox(sample, eval);
    CVOPT_CHECK(approx.ok(), "approx failed");
    double total = 0;
    size_t n = 0;
    for (size_t i = 0; i < exact.num_groups(); ++i) {
      auto j = approx->Find(exact.key(i));
      if (!j.has_value()) continue;
      const double truth = exact.value(i, agg);
      if (std::fabs(truth) < 1e-9) continue;
      total += std::fabs(approx->value(*j, agg) - truth) / std::fabs(truth);
      n++;
    }
    return total / static_cast<double>(n);
  };
  // Favoring "value" must make value's error smaller than when defavored.
  EXPECT_LT(err_of("w1", 0), err_of("w2", 0));
}

}  // namespace
}  // namespace cvopt
