// Tests for the streaming CVOPT sampler (paper §8 future work (3)) and its
// StreamGroupRouter — the one-pass packed/wide dense-id row router that
// replaced the GroupKey interner.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "src/datagen/openaq_gen.h"
#include "src/estimate/approx_executor.h"
#include "src/exec/group_by_executor.h"
#include "src/exec/group_index.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/streaming_cvopt_sampler.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

QuerySpec AvgV() {
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v")};
  return q;
}

TEST(StreamingCvoptTest, BudgetAndCoverage) {
  Table t = MakeSkewedTable(8, 200);
  Rng rng(31);
  StreamingCvoptSampler sampler(/*replan_interval=*/500);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, sampler.Build(t, {AvgV()}, 400, &rng));
  EXPECT_LE(s.size(), 420u);
  EXPECT_GE(s.size(), 300u);
  // Every group is represented.
  ASSERT_OK_AND_ASSIGN(size_t gcol, t.ColumnIndex("g"));
  std::set<int64_t> covered;
  for (uint32_t r : s.rows()) covered.insert(t.column(gcol).GetInt(r));
  EXPECT_EQ(covered.size(), 8u);
}

TEST(StreamingCvoptTest, WeightsExpandToPopulation) {
  Table t = MakeSkewedTable(6, 150);
  Rng rng(37);
  StreamingCvoptSampler sampler(300);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, sampler.Build(t, {AvgV()}, 300, &rng));
  const double wsum =
      std::accumulate(s.weights().begin(), s.weights().end(), 0.0);
  EXPECT_NEAR(wsum, static_cast<double>(t.num_rows()), 0.01 * t.num_rows());
}

TEST(StreamingCvoptTest, ConvergesTowardOfflineAllocation) {
  // On a stationary stream the one-pass allocation should be close to the
  // two-pass CVOPT allocation.
  Table t = MakeSkewedTable(5, 400, /*seed=*/41);
  Rng rng(43);
  StreamingCvoptSampler stream(200);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, stream.Build(t, {AvgV()}, 500, &rng));

  CvoptSampler offline;
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan, offline.Plan(t, {AvgV()}, 500));

  // Per-group streaming sample sizes.
  ASSERT_OK_AND_ASSIGN(size_t gcol, t.ColumnIndex("g"));
  std::unordered_map<int64_t, int> stream_sizes;
  for (uint32_t r : s.rows()) stream_sizes[t.column(gcol).GetInt(r)]++;
  for (size_t c = 0; c < plan.strat->num_strata(); ++c) {
    const int64_t g = plan.strat->key(c).codes[0];
    const double offline_s = static_cast<double>(plan.allocation.sizes[c]);
    const double stream_s = stream_sizes[g];
    EXPECT_NEAR(stream_s, offline_s, 0.35 * offline_s + 4)
        << "group " << g;
  }
}

TEST(StreamingCvoptTest, EstimatesAreAccurate) {
  Table t = MakeSkewedTable(6, 300, /*seed=*/47);
  Rng rng(53);
  StreamingCvoptSampler sampler(500);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, sampler.Build(t, {AvgV()}, 600, &rng));
  ASSERT_OK_AND_ASSIGN(QueryResult approx, ExecuteApprox(s, AvgV()));
  ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(t, AvgV()));
  ASSERT_EQ(approx.num_groups(), exact.num_groups());
  for (size_t i = 0; i < exact.num_groups(); ++i) {
    auto j = approx.Find(exact.key(i));
    ASSERT_TRUE(j.has_value());
    EXPECT_NEAR(approx.value(*j, 0), exact.value(i, 0),
                0.1 * std::fabs(exact.value(i, 0)));
  }
}

TEST(StreamingCvoptTest, BuilderDirectUse) {
  Table t = MakeSkewedTable(3, 100);
  Rng rng(59);
  ASSERT_OK_AND_ASSIGN(size_t gcol, t.ColumnIndex("g"));
  ASSERT_OK_AND_ASSIGN(size_t vcol, t.ColumnIndex("v"));
  StreamingCvoptBuilder builder(&t, {gcol}, vcol, 60, 100, &rng);
  for (uint32_t r = 0; r < t.num_rows(); ++r) builder.Offer(r);
  EXPECT_EQ(builder.rows_seen(), t.num_rows());
  EXPECT_EQ(builder.num_strata(), 3u);
  StratifiedSample s = std::move(builder).Finish();
  EXPECT_LE(s.size(), 66u);
  EXPECT_EQ(s.method(), "CVOPT-STREAM");
}

TEST(StreamingCvoptTest, RejectsBadInputs) {
  Table t = MakeSkewedTable(2, 10);
  Rng rng(61);
  StreamingCvoptSampler sampler;
  EXPECT_FALSE(sampler.Build(t, {}, 10, &rng).ok());
  QuerySpec count_only;
  count_only.group_by = {"g"};
  count_only.aggregates = {AggSpec::Count()};
  EXPECT_FALSE(sampler.Build(t, {count_only}, 10, &rng).ok());
  QuerySpec bad_group;
  bad_group.group_by = {"v"};  // double column
  bad_group.aggregates = {AggSpec::Avg("v")};
  EXPECT_FALSE(sampler.Build(t, {bad_group}, 10, &rng).ok());
}

// ---------------------------------------------------------------------
// StreamGroupRouter: the streaming row router must assign exactly the
// dense first-seen-order ids of the offline GroupIndex build.

TEST(StreamGroupRouterTest, MatchesGroupIndexOnReplay) {
  OpenAqOptions opts;
  opts.num_rows = 20000;
  Table t = GenerateOpenAq(opts);
  const std::vector<std::vector<std::string>> attr_sets = {
      {"country"},
      {"country", "parameter"},
      {"country", "parameter", "unit", "year", "month", "hour"},
  };
  for (const auto& attrs : attr_sets) {
    ASSERT_OK_AND_ASSIGN(GroupIndex gi, GroupIndex::Build(t, attrs));
    ASSERT_OK_AND_ASSIGN(std::vector<size_t> cols,
                         GroupIndex::Resolve(t, attrs));
    StreamGroupRouter router(&t, cols);
    for (uint32_t r = 0; r < t.num_rows(); ++r) {
      ASSERT_EQ(router.Route(r), gi.group_of(r)) << "row " << r;
    }
    ASSERT_EQ(router.num_groups(), gi.num_groups());
    for (size_t g = 0; g < gi.num_groups(); ++g) {
      EXPECT_EQ(router.KeyOf(g).codes, gi.KeyOf(g).codes) << "group " << g;
    }
    // Routing the stream again re-finds every id without inventing groups.
    for (uint32_t r = 0; r < t.num_rows(); ++r) {
      ASSERT_EQ(router.Route(r), gi.group_of(r));
    }
    EXPECT_EQ(router.num_groups(), gi.num_groups());
  }
}

TEST(StreamGroupRouterTest, DictionaryGrowthMidStream) {
  // Codes appear in strictly increasing magnitude, so every few rows a new
  // code outgrows its packed field and forces a widen + re-pack — the
  // mid-stream dictionary-growth path. Ints include negatives (zig-zag)
  // and jumps past several width doublings.
  Schema schema({{"s", DataType::kString}, {"k", DataType::kInt64}});
  TableBuilder b(schema);
  std::vector<int64_t> jumps = {0,   -1,    1,     -7,     100,
                                -300, 5000, -70000, 1 << 20, -(1 << 26)};
  for (int round = 0; round < 4; ++round) {
    for (size_t j = 0; j < jumps.size(); ++j) {
      const std::string s = "dict" + std::to_string(j * (round + 1));
      ASSERT_OK(b.AppendRow({Value(s), Value(jumps[j] * (round + 1))}));
    }
  }
  Table t = std::move(b).Finish();
  ASSERT_OK_AND_ASSIGN(GroupIndex gi, GroupIndex::Build(t, {"s", "k"}));
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> cols,
                       GroupIndex::Resolve(t, {"s", "k"}));
  StreamGroupRouter router(&t, cols);
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    ASSERT_EQ(router.Route(r), gi.group_of(r)) << "row " << r;
  }
  ASSERT_EQ(router.num_groups(), gi.num_groups());
  for (size_t g = 0; g < gi.num_groups(); ++g) {
    EXPECT_EQ(router.KeyOf(g).codes, gi.KeyOf(g).codes);
  }
}

TEST(StreamGroupRouterTest, WideKeyTierMatchesGroupIndex) {
  // Three ~2^40-spread int columns exceed 64 packed bits mid-stream: the
  // router must switch to the wide tier and keep ids aligned with the
  // offline kWide build.
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"c", DataType::kInt64}});
  TableBuilder b(schema);
  Rng gen(7);
  const int64_t kSpread = int64_t{1} << 40;
  for (int i = 0; i < 20000; ++i) {
    const int64_t base = static_cast<int64_t>(gen.Next64() % 50);
    ASSERT_OK(b.AppendRow({Value(base * kSpread), Value(-base * kSpread),
                           Value(base % 7)}));
  }
  Table t = std::move(b).Finish();
  ASSERT_OK_AND_ASSIGN(GroupIndex gi, GroupIndex::Build(t, {"a", "b", "c"}));
  ASSERT_EQ(gi.tier(), GroupIndex::Tier::kWide);
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> cols,
                       GroupIndex::Resolve(t, {"a", "b", "c"}));
  StreamGroupRouter router(&t, cols);
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    ASSERT_EQ(router.Route(r), gi.group_of(r)) << "row " << r;
  }
  EXPECT_FALSE(router.packed());
  ASSERT_EQ(router.num_groups(), gi.num_groups());
  for (size_t g = 0; g < gi.num_groups(); ++g) {
    EXPECT_EQ(router.KeyOf(g).codes, gi.KeyOf(g).codes);
  }
}

TEST(StreamGroupRouterTest, MoreColumnsThanPackableBitsStartsWide) {
  // 70 one-bit fields cannot pack into a word even at minimal widths: the
  // router must start in the wide tier (no shift past 63) and still match
  // the offline build.
  std::vector<Field> cols;
  for (int j = 0; j < 70; ++j) {
    cols.push_back({"c" + std::to_string(j), DataType::kInt64});
  }
  TableBuilder b((Schema(cols)));
  for (int64_t row = 0; row < 6; ++row) {
    std::vector<Value> vals;
    for (int j = 0; j < 70; ++j) vals.emplace_back(int64_t{row % 3});
    ASSERT_OK(b.AppendRow(vals));
  }
  Table t = std::move(b).Finish();
  std::vector<std::string> attrs;
  for (int j = 0; j < 70; ++j) attrs.push_back("c" + std::to_string(j));
  ASSERT_OK_AND_ASSIGN(GroupIndex gi, GroupIndex::Build(t, attrs));
  ASSERT_OK_AND_ASSIGN(std::vector<size_t> idx, GroupIndex::Resolve(t, attrs));
  StreamGroupRouter router(&t, idx);
  EXPECT_FALSE(router.packed());
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(router.Route(r), gi.group_of(r));
  }
  EXPECT_EQ(router.num_groups(), 3u);
}

TEST(StreamGroupRouterTest, EmptyColumnListRoutesEverythingToGroupZero) {
  Table t = MakeSkewedTable(3, 10);
  StreamGroupRouter router(&t, {});
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(router.Route(r), 0u);
  }
  EXPECT_EQ(router.num_groups(), 1u);
  EXPECT_EQ(router.arity(), 0u);
}

// ---------------------------------------------------------------------
// Streaming sampler vs the offline CVOPT sampler on identical data/seed.

TEST(StreamingCvoptTest, DifferentialVsOfflineOnWideKeys) {
  // Wide-tier stratification keys: the streaming sampler must still cover
  // every stratum, respect the budget, and produce per-stratum sizes close
  // to the offline two-pass allocation on a stationary stream.
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"v", DataType::kDouble}});
  TableBuilder b(schema);
  Rng gen(131);
  const int64_t kSpread = int64_t{1} << 45;
  for (int i = 0; i < 6000; ++i) {
    const int64_t g = static_cast<int64_t>(gen.Uniform(6));
    ASSERT_OK(b.AppendRow(
        {Value(g * kSpread), Value(-g * kSpread),
         Value(10.0 * (g + 1) +
               static_cast<double>(static_cast<int64_t>(gen.Uniform(20))) -
               10.0)}));
  }
  Table t = std::move(b).Finish();
  QuerySpec q;
  q.group_by = {"a", "b"};
  q.aggregates = {AggSpec::Avg("v")};

  Rng rng(137);
  StreamingCvoptSampler stream(/*replan_interval=*/500);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, stream.Build(t, {q}, 600, &rng));
  EXPECT_LE(s.size(), 660u);

  CvoptSampler offline;
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan, offline.Plan(t, {q}, 600));
  ASSERT_EQ(plan.strat->num_strata(), 6u);
  std::vector<uint64_t> stream_sizes(plan.strat->num_strata(), 0);
  for (uint32_t row : s.rows()) {
    stream_sizes[plan.strat->StratumOfRow(row)]++;
  }
  for (size_t c = 0; c < plan.strat->num_strata(); ++c) {
    const double offline_s = static_cast<double>(plan.allocation.sizes[c]);
    EXPECT_NEAR(static_cast<double>(stream_sizes[c]), offline_s,
                0.35 * offline_s + 4)
        << "stratum " << c;
  }
}

TEST(StreamingCvoptTest, GroupedArrivalOrderStillCoversAllGroups) {
  // A stream sorted by the grouping attribute is the adversarial order for
  // one-pass stratified sampling (each group's rows arrive in one burst,
  // and new dictionary codes appear only at group boundaries — the
  // router's widen path in its natural habitat). Admit-all-then-subsample
  // must keep every group represented with near-allocation sizes.
  Schema schema({{"g", DataType::kString}, {"v", DataType::kDouble}});
  TableBuilder b(schema);
  Rng gen(139);
  for (int g = 0; g < 8; ++g) {
    const int n = 300 + 100 * g;
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(b.AppendRow(
          {Value("grp" + std::to_string(g)),
           Value(5.0 * (g + 1) +
                 static_cast<double>(static_cast<int64_t>(gen.Uniform(10))))}));
    }
  }
  Table t = std::move(b).Finish();
  Rng rng(149);
  StreamingCvoptSampler stream(/*replan_interval=*/400);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, stream.Build(t, {AvgV()}, 480, &rng));
  ASSERT_OK_AND_ASSIGN(size_t gcol, t.ColumnIndex("g"));
  std::set<std::string> covered;
  for (uint32_t row : s.rows()) {
    covered.insert(t.column(gcol).GetString(row));
  }
  EXPECT_EQ(covered.size(), 8u);
}

}  // namespace
}  // namespace cvopt
