// Tests for the streaming CVOPT sampler (paper §8 future work (3)).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "src/estimate/approx_executor.h"
#include "src/exec/group_by_executor.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/streaming_cvopt_sampler.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

QuerySpec AvgV() {
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v")};
  return q;
}

TEST(StreamingCvoptTest, BudgetAndCoverage) {
  Table t = MakeSkewedTable(8, 200);
  Rng rng(31);
  StreamingCvoptSampler sampler(/*replan_interval=*/500);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, sampler.Build(t, {AvgV()}, 400, &rng));
  EXPECT_LE(s.size(), 420u);
  EXPECT_GE(s.size(), 300u);
  // Every group is represented.
  ASSERT_OK_AND_ASSIGN(size_t gcol, t.ColumnIndex("g"));
  std::set<int64_t> covered;
  for (uint32_t r : s.rows()) covered.insert(t.column(gcol).GetInt(r));
  EXPECT_EQ(covered.size(), 8u);
}

TEST(StreamingCvoptTest, WeightsExpandToPopulation) {
  Table t = MakeSkewedTable(6, 150);
  Rng rng(37);
  StreamingCvoptSampler sampler(300);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, sampler.Build(t, {AvgV()}, 300, &rng));
  const double wsum =
      std::accumulate(s.weights().begin(), s.weights().end(), 0.0);
  EXPECT_NEAR(wsum, static_cast<double>(t.num_rows()), 0.01 * t.num_rows());
}

TEST(StreamingCvoptTest, ConvergesTowardOfflineAllocation) {
  // On a stationary stream the one-pass allocation should be close to the
  // two-pass CVOPT allocation.
  Table t = MakeSkewedTable(5, 400, /*seed=*/41);
  Rng rng(43);
  StreamingCvoptSampler stream(200);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, stream.Build(t, {AvgV()}, 500, &rng));

  CvoptSampler offline;
  ASSERT_OK_AND_ASSIGN(AllocationPlan plan, offline.Plan(t, {AvgV()}, 500));

  // Per-group streaming sample sizes.
  ASSERT_OK_AND_ASSIGN(size_t gcol, t.ColumnIndex("g"));
  std::unordered_map<int64_t, int> stream_sizes;
  for (uint32_t r : s.rows()) stream_sizes[t.column(gcol).GetInt(r)]++;
  for (size_t c = 0; c < plan.strat->num_strata(); ++c) {
    const int64_t g = plan.strat->key(c).codes[0];
    const double offline_s = static_cast<double>(plan.allocation.sizes[c]);
    const double stream_s = stream_sizes[g];
    EXPECT_NEAR(stream_s, offline_s, 0.35 * offline_s + 4)
        << "group " << g;
  }
}

TEST(StreamingCvoptTest, EstimatesAreAccurate) {
  Table t = MakeSkewedTable(6, 300, /*seed=*/47);
  Rng rng(53);
  StreamingCvoptSampler sampler(500);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s, sampler.Build(t, {AvgV()}, 600, &rng));
  ASSERT_OK_AND_ASSIGN(QueryResult approx, ExecuteApprox(s, AvgV()));
  ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(t, AvgV()));
  ASSERT_EQ(approx.num_groups(), exact.num_groups());
  for (size_t i = 0; i < exact.num_groups(); ++i) {
    auto j = approx.Find(exact.key(i));
    ASSERT_TRUE(j.has_value());
    EXPECT_NEAR(approx.value(*j, 0), exact.value(i, 0),
                0.1 * std::fabs(exact.value(i, 0)));
  }
}

TEST(StreamingCvoptTest, BuilderDirectUse) {
  Table t = MakeSkewedTable(3, 100);
  Rng rng(59);
  ASSERT_OK_AND_ASSIGN(size_t gcol, t.ColumnIndex("g"));
  ASSERT_OK_AND_ASSIGN(size_t vcol, t.ColumnIndex("v"));
  StreamingCvoptBuilder builder(&t, {gcol}, vcol, 60, 100, &rng);
  for (uint32_t r = 0; r < t.num_rows(); ++r) builder.Offer(r);
  EXPECT_EQ(builder.rows_seen(), t.num_rows());
  EXPECT_EQ(builder.num_strata(), 3u);
  StratifiedSample s = std::move(builder).Finish();
  EXPECT_LE(s.size(), 66u);
  EXPECT_EQ(s.method(), "CVOPT-STREAM");
}

TEST(StreamingCvoptTest, RejectsBadInputs) {
  Table t = MakeSkewedTable(2, 10);
  Rng rng(61);
  StreamingCvoptSampler sampler;
  EXPECT_FALSE(sampler.Build(t, {}, 10, &rng).ok());
  QuerySpec count_only;
  count_only.group_by = {"g"};
  count_only.aggregates = {AggSpec::Count()};
  EXPECT_FALSE(sampler.Build(t, {count_only}, 10, &rng).ok());
  QuerySpec bad_group;
  bad_group.group_by = {"v"};  // double column
  bad_group.aggregates = {AggSpec::Avg("v")};
  EXPECT_FALSE(sampler.Build(t, {bad_group}, 10, &rng).ok());
}

}  // namespace
}  // namespace cvopt
