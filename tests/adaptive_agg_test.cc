// Adaptive aggregation engine: the hash-vs-sort planner (estimator,
// override precedence, decision counters) and the load-bearing
// differential — the sort-based build must be BIT-identical to the hash
// build (group ids, first-occurrence ordering, labels, and float sums, so
// equality is memcmp, not tolerance) across thread counts, parallel
// grains, and group-index tiers, including through a full sampler build.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/exec/agg_planner.h"
#include "src/exec/group_by_executor.h"
#include "src/estimate/approx_executor.h"
#include "src/sample/cvopt_sampler.h"
#include "src/sample/streaming_cvopt_sampler.h"
#include "src/table/table_builder.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

class ScopedAggPath {
 public:
  explicit ScopedAggPath(int mode) { SetAggPathOverrideForTesting(mode); }
  ~ScopedAggPath() { SetAggPathOverrideForTesting(-1); }
};

enum class Tier { kDirect, kPacked, kWide };

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kDirect:
      return "direct";
    case Tier::kPacked:
      return "packed";
    case Tier::kWide:
      return "wide";
  }
  return "?";
}

// Two int64 group columns shaped to land the group index in the requested
// tier (the tier is a function of per-column code ranges):
//   direct:  6 total bits, tiny dense domain;
//   packed: 24 total bits (> the 22-bit direct cap, <= 64);
//   wide:  ~82 total bits (cannot pack into one word).
Table MakeTierTable(Tier tier, size_t rows) {
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"v", DataType::kDouble}});
  TableBuilder b(schema);
  Rng rng(1000 + static_cast<int>(tier));
  for (size_t i = 0; i < rows; ++i) {
    int64_t a = 0, bb = 0;
    switch (tier) {
      case Tier::kDirect:
        a = static_cast<int64_t>(rng.Uniform(8));
        bb = static_cast<int64_t>(rng.Uniform(8));
        break;
      case Tier::kPacked:
        a = static_cast<int64_t>(rng.Uniform(4096));
        bb = static_cast<int64_t>(rng.Uniform(4096));
        break;
      case Tier::kWide:
        a = static_cast<int64_t>(rng.Uniform(1u << 20)) << 21;
        bb = static_cast<int64_t>(rng.Uniform(1u << 20)) << 21;
        break;
    }
    Status st = b.AppendRow(
        {Value(a), Value(bb), Value(10.0 + 2.0 * rng.NextGaussian())});
    CVOPT_CHECK(st.ok(), "append failed");
  }
  return std::move(b).Finish();
}

std::vector<QuerySpec> MakeQueries() {
  std::vector<QuerySpec> qs;
  {
    QuerySpec q;
    q.name = "all-aggs";
    q.group_by = {"a", "b"};
    q.aggregates = {AggSpec::Count(), AggSpec::Sum("v"), AggSpec::Avg("v"),
                    AggSpec::Variance("v"),
                    AggSpec::CountIf(Predicate::Compare(
                        "a", CompareOp::kLt, Value(int64_t{2048})))};
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "filtered";
    q.group_by = {"a"};
    q.aggregates = {AggSpec::Count(), AggSpec::Sum("v")};
    q.where = Predicate::Compare("b", CompareOp::kGe, Value(int64_t{1}));
    qs.push_back(q);
  }
  return qs;
}

void ExpectResultsIdentical(const QueryResult& a, const QueryResult& b,
                            const std::string& what) {
  ASSERT_EQ(a.num_groups(), b.num_groups()) << what;
  ASSERT_EQ(a.num_aggregates(), b.num_aggregates()) << what;
  for (size_t g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.label(g), b.label(g)) << what << " group " << g;
    const std::vector<double> va = a.values(g);
    const std::vector<double> vb = b.values(g);
    ASSERT_EQ(va.size(), vb.size());
    EXPECT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)), 0)
        << what << " group " << g << " (" << a.label(g) << ")";
  }
}

// The tentpole differential: every (tier, threads, grain, query) cell runs
// once forced-hash and once forced-sort; results must match bit for bit.
// Under forced sort the direct and wide tiers legitimately fall back to
// hash (sort handles packed keys), so those cells double as no-op checks.
TEST(AdaptiveAggDifferentialTest, HashAndSortPathsBitIdentical) {
  for (Tier tier : {Tier::kDirect, Tier::kPacked, Tier::kWide}) {
    const Table t = MakeTierTable(tier, 40'000);
    for (int threads : {1, 2, 3, 8}) {
      for (size_t grain : {size_t{1000}, size_t{4096}, size_t{65536}}) {
        ScopedExecThreads te(threads, grain);
        for (const QuerySpec& q : MakeQueries()) {
          const std::string what = std::string(TierName(tier)) + "/" +
                                   q.name + " threads=" +
                                   std::to_string(threads) +
                                   " grain=" + std::to_string(grain);
          Result<QueryResult> hash = [&] {
            ScopedAggPath path(0);
            return ExecuteExact(t, q);
          }();
          Result<QueryResult> sorted = [&] {
            ScopedAggPath path(1);
            return ExecuteExact(t, q);
          }();
          ASSERT_TRUE(hash.ok()) << what << ": " << hash.status().ToString();
          ASSERT_TRUE(sorted.ok())
              << what << ": " << sorted.status().ToString();
          ExpectResultsIdentical(hash.value(), sorted.value(), what);
        }
      }
    }
  }
}

// The sort path must also be invisible through a full sampler build: same
// stratification, same draws, same weights. The table packs into 25 bits
// (beyond the direct cap) while keeping the distinct-group count modest
// enough for the allocation solve — column b takes two values 4096 apart,
// so its code RANGE forces the packed tier even though the group count is
// small.
TEST(AdaptiveAggDifferentialTest, SamplerDigestIdenticalAcrossPaths) {
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"v", DataType::kDouble}});
  TableBuilder b(schema);
  Rng rng(77);
  for (size_t i = 0; i < 60'000; ++i) {
    Status st = b.AppendRow(
        {Value(static_cast<int64_t>(rng.Uniform(3000))),
         Value(static_cast<int64_t>(rng.Uniform(2)) * 4096),
         Value(5.0 + rng.NextGaussian())});
    CVOPT_CHECK(st.ok(), "append failed");
  }
  const Table t = std::move(b).Finish();

  QuerySpec spec;
  spec.group_by = {"a", "b"};
  spec.aggregates = {AggSpec::Avg("v")};
  for (int threads : {1, 8}) {
    ScopedExecThreads te(threads);
    auto build = [&](int mode) {
      ScopedAggPath path(mode);
      Rng seed(4242);
      CvoptSampler sampler;
      return sampler.Build(t, {spec}, /*budget=*/6'000, &seed);
    };
    Result<StratifiedSample> hash = build(0);
    Result<StratifiedSample> sorted = build(1);
    ASSERT_OK(hash.status());
    ASSERT_OK(sorted.status());
    EXPECT_EQ(hash.value().rows(), sorted.value().rows())
        << "threads=" << threads;
    const std::vector<double>& wh = hash.value().weights();
    const std::vector<double>& ws = sorted.value().weights();
    ASSERT_EQ(wh.size(), ws.size());
    EXPECT_EQ(std::memcmp(wh.data(), ws.data(), wh.size() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

// A streaming build's router occupancy rides on the sample and reaches the
// planner when the sample is grouped at query time: the estimate ExecuteApprox
// plans with must be at least the stratum count the router observed.
TEST(AggPlannerTest, StreamingRouterOccupancyFlowsToApproxPlanning) {
  const Table t = MakeTierTable(Tier::kPacked, 30'000);
  QuerySpec spec;
  spec.group_by = {"a", "b"};
  spec.aggregates = {AggSpec::Avg("v")};
  Rng seed(99);
  StreamingCvoptSampler sampler(/*replan_interval=*/5'000);
  ASSERT_OK_AND_ASSIGN(StratifiedSample sample,
                       sampler.Build(t, {spec}, /*budget=*/4'000, &seed));
  ASSERT_GT(sample.observed_strata(), 0u);

  ResetAggPlannerStats();
  ASSERT_OK_AND_ASSIGN(QueryResult r, ExecuteApprox(sample, spec));
  (void)r;
  const AggPlannerStats stats = GetAggPlannerStats();
  ASSERT_GE(stats.hash_decisions + stats.sort_decisions, 1u);
  // The estimate is capped by the build's row count (the sample size), so
  // the hint's floor is min(observed, sample rows). Without the hint this
  // small build has no probe and would estimate 1.
  EXPECT_GE(stats.last_estimated_groups,
            std::min<uint64_t>(sample.observed_strata(), sample.size()));
  EXPECT_GT(stats.last_estimated_groups, 1u);
}

TEST(AggPlannerTest, EstimatorExtrapolatesAndCaps) {
  AggPlanInputs in;
  in.rows = 1'000'000;
  // Half-distinct probe: G ~ d*s/(s-d) = 2048*4096/2048 = 4096.
  in.probe_sampled = 4096;
  in.probe_distinct = 2048;
  EXPECT_EQ(EstimateGroups(in), 4096u);
  // All-distinct probe only bounds G from below -> falls to the cap.
  in.probe_distinct = 4096;
  EXPECT_EQ(EstimateGroups(in), in.rows);
  // The domain bounds the cap.
  in.domain_bound = 100'000;
  EXPECT_EQ(EstimateGroups(in), 100'000u);
  // A router occupancy hint dominates a smaller extrapolation.
  in.probe_distinct = 2048;
  in.occupancy_hint = 50'000;
  EXPECT_EQ(EstimateGroups(in), 50'000u);
  // No probe, no hint: one group is the floor.
  AggPlanInputs empty;
  empty.rows = 10;
  EXPECT_EQ(EstimateGroups(empty), 1u);
}

TEST(AggPlannerTest, AutoModeSwitchesOnEstimatedCardinality) {
  // Pin the AUTO threshold (mode 2) so the assertions hold even when the
  // suite runs under an ambient CVOPT_AGG_PATH (the CI sort-path lap).
  ScopedAggPath pin_auto(2);
  ResetAggPlannerStats();
  AggPlanInputs small;
  small.rows = 1'000'000;
  small.probe_sampled = 4096;
  small.probe_distinct = 2048;  // estimate 4096: cache-resident, hash
  AggPlanDecision d1 = PlanAggPath(small);
  EXPECT_EQ(d1.path, AggPath::kHash);
  EXPECT_FALSE(d1.forced);

  AggPlanInputs huge;
  huge.rows = 1'000'000;
  huge.occupancy_hint = size_t{1} << 18;  // at the sort threshold
  AggPlanDecision d2 = PlanAggPath(huge);
  EXPECT_EQ(d2.path, AggPath::kSort);
  EXPECT_FALSE(d2.forced);

  const AggPlannerStats stats = GetAggPlannerStats();
  EXPECT_EQ(stats.hash_decisions, 1u);
  EXPECT_EQ(stats.sort_decisions, 1u);
  EXPECT_EQ(stats.last_estimated_groups, uint64_t{1} << 18);
}

TEST(AggPlannerTest, TestingOverrideBeatsAuto) {
  AggPlanInputs small;
  small.rows = 100;  // auto would say hash
  {
    ScopedAggPath path(1);
    AggPlanDecision d = PlanAggPath(small);
    EXPECT_EQ(d.path, AggPath::kSort);
    EXPECT_TRUE(d.forced);
  }
  AggPlanInputs huge;
  huge.rows = 1'000'000;
  huge.occupancy_hint = size_t{1} << 20;  // auto would say sort
  {
    ScopedAggPath path(0);
    AggPlanDecision d = PlanAggPath(huge);
    EXPECT_EQ(d.path, AggPath::kHash);
    EXPECT_TRUE(d.forced);
  }
}

TEST(AggPlannerTest, OccupancyHintIsScopedAndRestored) {
  EXPECT_EQ(CurrentAggOccupancyHint(), 0u);
  {
    ScopedAggOccupancyHint outer(500);
    EXPECT_EQ(CurrentAggOccupancyHint(), 500u);
    {
      ScopedAggOccupancyHint inner(900);
      EXPECT_EQ(CurrentAggOccupancyHint(), 900u);
    }
    EXPECT_EQ(CurrentAggOccupancyHint(), 500u);
  }
  EXPECT_EQ(CurrentAggOccupancyHint(), 0u);
}

// A real packed-tier build reports its true group count back to the
// planner's stats, so benches can print estimated-vs-actual.
TEST(AggPlannerTest, BuildRecordsActualGroups) {
  const Table t = MakeTierTable(Tier::kPacked, 20'000);
  QuerySpec q;
  q.group_by = {"a", "b"};
  q.aggregates = {AggSpec::Count()};
  ResetAggPlannerStats();
  ASSERT_OK_AND_ASSIGN(QueryResult r, ExecuteExact(t, q));
  const AggPlannerStats stats = GetAggPlannerStats();
  EXPECT_EQ(stats.last_actual_groups, r.num_groups());
  EXPECT_GE(stats.hash_decisions + stats.sort_decisions, 1u);
}

}  // namespace
}  // namespace cvopt
