// QueryContext unit coverage: deadline / cancellation checks, the
// hierarchical memory budget (charge, refusal rollback, peak), reservation
// RAII, and the ambient thread-local installation.
#include "src/exec/query_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(QueryContextTest, FreshContextPassesChecks) {
  QueryContext ctx;
  EXPECT_OK(ctx.Check());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.has_deadline());
}

TEST(QueryContextTest, CancelYieldsCancelled) {
  QueryContext ctx;
  ctx.Cancel();
  Status st = ctx.Check();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, ExpiredDeadlineYieldsDeadlineExceeded) {
  QueryContext ctx;
  ctx.set_deadline(QueryContext::Clock::now() - std::chrono::milliseconds(1));
  Status st = ctx.Check();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryContextTest, FutureDeadlinePasses) {
  QueryContext ctx;
  ctx.set_timeout(std::chrono::hours(1));
  EXPECT_OK(ctx.Check());
  EXPECT_TRUE(ctx.has_deadline());
}

TEST(QueryContextTest, CancellationBeatsDeadline) {
  QueryContext ctx;
  ctx.set_timeout(std::chrono::hours(1));
  ctx.Cancel();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(MemoryBudgetTest, UnlimitedBudgetTracksUsage) {
  MemoryBudget b;
  EXPECT_TRUE(b.TryCharge(1 << 20));
  EXPECT_EQ(b.used(), 1u << 20);
  EXPECT_EQ(b.peak(), 1u << 20);
  b.Uncharge(1 << 20);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.peak(), 1u << 20);  // peak is monotone
}

TEST(MemoryBudgetTest, LimitRefusesAndRollsBack) {
  MemoryBudget b(1000, nullptr);
  EXPECT_TRUE(b.TryCharge(600));
  EXPECT_FALSE(b.TryCharge(500));  // 1100 > 1000
  EXPECT_EQ(b.used(), 600u);       // refused charge left no residue
  EXPECT_TRUE(b.TryCharge(400));
  EXPECT_EQ(b.used(), 1000u);
}

TEST(MemoryBudgetTest, ParentRefusalRollsBackChild) {
  MemoryBudget tenant(1000, nullptr);
  MemoryBudget query(10000, &tenant);  // generous child, tight parent
  EXPECT_TRUE(query.TryCharge(800));
  EXPECT_FALSE(query.TryCharge(300));  // parent would hit 1100
  EXPECT_EQ(query.used(), 800u);       // child rolled back too
  EXPECT_EQ(tenant.used(), 800u);
  query.Uncharge(800);
  EXPECT_EQ(tenant.used(), 0u);
}

TEST(MemoryBudgetTest, ZeroChargeAlwaysFits) {
  MemoryBudget b(1, nullptr);
  EXPECT_TRUE(b.TryCharge(0));
  EXPECT_EQ(b.used(), 0u);
}

TEST(QueryContextTest, TryReserveReturnsTypedExhaustion) {
  QueryContext ctx;
  ctx.set_memory_limit(1024);
  Result<MemoryReservation> big = ctx.TryReserve(2048, "test slab");
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(big.status().ToString().find("test slab"), std::string::npos);
  EXPECT_EQ(ctx.budget().used(), 0u);  // refused reservation charged nothing
}

TEST(QueryContextTest, ReservationReleasesOnScopeExit) {
  QueryContext ctx;
  ctx.set_memory_limit(1024);
  {
    ASSERT_OK_AND_ASSIGN(MemoryReservation r, ctx.TryReserve(512, "a"));
    EXPECT_EQ(ctx.budget().used(), 512u);
    ASSERT_OK_AND_ASSIGN(MemoryReservation r2, ctx.TryReserve(512, "b"));
    EXPECT_EQ(ctx.budget().used(), 1024u);
  }
  EXPECT_EQ(ctx.budget().used(), 0u);
  EXPECT_EQ(ctx.budget().peak(), 1024u);
}

TEST(QueryContextTest, ReservationMoveTransfersOwnership) {
  QueryContext ctx;
  ctx.set_memory_limit(1024);
  ASSERT_OK_AND_ASSIGN(MemoryReservation a, ctx.TryReserve(256, "a"));
  MemoryReservation b = std::move(a);
  EXPECT_EQ(ctx.budget().used(), 256u);
  a.Release();  // moved-from: a no-op
  EXPECT_EQ(ctx.budget().used(), 256u);
  b.Release();
  EXPECT_EQ(ctx.budget().used(), 0u);
}

TEST(QueryContextTest, AmbientInstallationNestsAndRestores) {
  EXPECT_EQ(CurrentQueryContext(), nullptr);
  QueryContext outer;
  {
    ScopedQueryContext s1(&outer);
    EXPECT_EQ(CurrentQueryContext(), &outer);
    QueryContext inner;
    {
      ScopedQueryContext s2(&inner);
      EXPECT_EQ(CurrentQueryContext(), &inner);
    }
    EXPECT_EQ(CurrentQueryContext(), &outer);
  }
  EXPECT_EQ(CurrentQueryContext(), nullptr);
}

TEST(QueryContextTest, AmbientContextIsPerThread) {
  QueryContext ctx;
  ScopedQueryContext scope(&ctx);
  const QueryContext* seen = &ctx;  // anything non-null
  std::thread([&] { seen = CurrentQueryContext(); }).join();
  EXPECT_EQ(seen, nullptr);  // plain threads do not inherit the context
}

TEST(QueryContextTest, CheckQueryAbortedUsesAmbientContext) {
  EXPECT_OK(CheckQueryAborted());  // ungoverned: trivially OK
  QueryContext ctx;
  ctx.Cancel();
  ScopedQueryContext scope(&ctx);
  EXPECT_EQ(CheckQueryAborted().code(), StatusCode::kCancelled);
  EXPECT_GE(ctx.checks_performed(), 1u);
}

TEST(QueryContextTest, GovernedSectionConvertsAbortToStatus) {
  Status st = GovernedSection([]() -> Status {
    throw QueryAbortedError(Status::DeadlineExceeded("boom"));
  });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryContextTest, ReserveMemoryOrThrowThrowsWhenOverBudget) {
  QueryContext ctx;
  ctx.set_memory_limit(16);
  ScopedQueryContext scope(&ctx);
  Status st = GovernedSection([]() -> Status {
    MemoryReservation r = ReserveMemoryOrThrow(1 << 20, "huge");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.budget().used(), 0u);
}

}  // namespace
}  // namespace cvopt
