// Tests for src/exec: exact group-by execution, aggregates, cube expansion,
// result joins.
#include <gtest/gtest.h>

#include "src/exec/cube.h"
#include "src/exec/group_by_executor.h"
#include "src/exec/result_join.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(AggSpecTest, Labels) {
  EXPECT_EQ(AggSpec::Avg("gpa").Label(), "AVG(gpa)");
  EXPECT_EQ(AggSpec::Sum("age").Label(), "SUM(age)");
  EXPECT_EQ(AggSpec::Count().Label(), "COUNT(*)");
  EXPECT_EQ(AggSpec::CountIf(Predicate::Compare("v", CompareOp::kGt, 1)).Label(),
            "COUNT_IF(v > 1)");
}

TEST(BoundAggregatesTest, RejectsBadSpecs) {
  Table t = MakeStudentTable();
  EXPECT_FALSE(BoundAggregates::Bind(t, {AggSpec::Avg("missing")}).ok());
  EXPECT_FALSE(BoundAggregates::Bind(t, {AggSpec::Avg("major")}).ok());
  AggSpec bad_countif{AggFunc::kCountIf, "", nullptr, 1.0};
  EXPECT_FALSE(BoundAggregates::Bind(t, {bad_countif}).ok());
}

TEST(ExecuteExactTest, PaperExampleAvgGpaByMajor) {
  Table t = MakeStudentTable();
  QuerySpec q;
  q.group_by = {"major"};
  q.aggregates = {AggSpec::Avg("gpa")};
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  ASSERT_EQ(res.num_groups(), 4u);
  auto cs = res.FindByLabel("CS");
  ASSERT_TRUE(cs.has_value());
  EXPECT_DOUBLE_EQ(res.value(*cs, 0), 3.25);
  auto math = res.FindByLabel("Math");
  ASSERT_TRUE(math.has_value());
  EXPECT_DOUBLE_EQ(res.value(*math, 0), 3.7);
}

TEST(ExecuteExactTest, MultipleAggregates) {
  Table t = MakeStudentTable();
  QuerySpec q;
  q.group_by = {"college"};
  q.aggregates = {AggSpec::Avg("age"), AggSpec::Sum("sat"), AggSpec::Count()};
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  ASSERT_EQ(res.num_groups(), 2u);
  auto sci = res.FindByLabel("Science");
  ASSERT_TRUE(sci.has_value());
  EXPECT_DOUBLE_EQ(res.value(*sci, 0), (25 + 22 + 24 + 28) / 4.0);
  EXPECT_DOUBLE_EQ(res.value(*sci, 1), 1250 + 1280 + 1230 + 1270);
  EXPECT_DOUBLE_EQ(res.value(*sci, 2), 4.0);
}

TEST(ExecuteExactTest, WherePredicateFiltersRows) {
  Table t = MakeStudentTable();
  QuerySpec q;
  q.group_by = {"major"};
  q.aggregates = {AggSpec::Avg("gpa")};
  q.where = Predicate::Compare("college", CompareOp::kEq, "Science");
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  EXPECT_EQ(res.num_groups(), 2u);  // only CS and Math survive
  EXPECT_FALSE(res.FindByLabel("EE").has_value());
}

TEST(ExecuteExactTest, CountIfAggregate) {
  Table t = MakeStudentTable();
  QuerySpec q;
  q.group_by = {"college"};
  q.aggregates = {
      AggSpec::CountIf(Predicate::Compare("gpa", CompareOp::kGt, 3.4))};
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  auto sci = res.FindByLabel("Science");
  auto eng = res.FindByLabel("Engineering");
  ASSERT_TRUE(sci.has_value());
  ASSERT_TRUE(eng.has_value());
  EXPECT_DOUBLE_EQ(res.value(*sci, 0), 2.0);  // 3.8, 3.6
  EXPECT_DOUBLE_EQ(res.value(*eng, 0), 2.0);  // 3.5, 3.7
}

TEST(ExecuteExactTest, EmptyGroupByIsFullTable) {
  Table t = MakeStudentTable();
  QuerySpec q;
  q.aggregates = {AggSpec::Count()};
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  ASSERT_EQ(res.num_groups(), 1u);
  EXPECT_DOUBLE_EQ(res.value(0, 0), 8.0);
}

TEST(ExecuteExactTest, GroupByMultipleAttrs) {
  Table t = MakeStudentTable();
  QuerySpec q;
  q.group_by = {"college", "major"};
  q.aggregates = {AggSpec::Count()};
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, q));
  EXPECT_EQ(res.num_groups(), 4u);
  auto g = res.FindByLabel("Science|CS");
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(res.value(*g, 0), 2.0);
}

TEST(ExecuteExactTest, ErrorsOnBadQuery) {
  Table t = MakeStudentTable();
  QuerySpec no_aggs;
  no_aggs.group_by = {"major"};
  EXPECT_FALSE(ExecuteExact(t, no_aggs).ok());

  QuerySpec bad_group;
  bad_group.group_by = {"gpa"};  // double column
  bad_group.aggregates = {AggSpec::Count()};
  EXPECT_FALSE(ExecuteExact(t, bad_group).ok());
}

TEST(QueryResultTest, DuplicateGroupRejected) {
  QueryResult r({"COUNT(*)"}, {"g"});
  ASSERT_OK(r.AddGroup(GroupKey{{1}}, "1", {2.0}));
  EXPECT_FALSE(r.AddGroup(GroupKey{{1}}, "1", {3.0}).ok());
  EXPECT_FALSE(r.AddGroup(GroupKey{{2}}, "2", {1.0, 2.0}).ok());  // width
}

TEST(QuerySpecTest, ToStringRendersSql) {
  QuerySpec q;
  q.name = "T1";
  q.group_by = {"major"};
  q.aggregates = {AggSpec::Avg("gpa")};
  q.where = Predicate::Compare("age", CompareOp::kGt, 21);
  EXPECT_EQ(q.ToString(),
            "[T1] SELECT major, AVG(gpa) WHERE age > 21 GROUP BY major");
}

TEST(CubeTest, ExpandsAllSubsets) {
  QuerySpec base;
  base.name = "C";
  base.group_by = {"a", "b"};
  base.aggregates = {AggSpec::Count()};
  std::vector<QuerySpec> cube = ExpandCube(base);
  ASSERT_EQ(cube.size(), 4u);
  EXPECT_EQ(cube[0].group_by, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(cube[3].group_by, (std::vector<std::string>{}));
  EXPECT_EQ(cube[0].name, "C/a,b");
  EXPECT_EQ(cube[3].name, "C/()");
}

TEST(CubeTest, SingleAttribute) {
  QuerySpec base;
  base.group_by = {"x"};
  base.aggregates = {AggSpec::Count()};
  EXPECT_EQ(ExpandCube(base).size(), 2u);
}

TEST(CubeTest, ThreeAttributesGive8Sets) {
  QuerySpec base;
  base.group_by = {"a", "b", "c"};
  base.aggregates = {AggSpec::Count()};
  EXPECT_EQ(ExpandCube(base).size(), 8u);
}

TEST(ResultJoinTest, DiffMatchesAq1Shape) {
  Table t = MakeStudentTable();
  QuerySpec science, engineering;
  science.group_by = {"major"};
  science.aggregates = {AggSpec::Avg("gpa")};
  science.where = Predicate::Compare("college", CompareOp::kEq, "Science");
  engineering = science;
  engineering.where =
      Predicate::Compare("college", CompareOp::kEq, "Engineering");

  ASSERT_OK_AND_ASSIGN(QueryResult a, ExecuteExact(t, science));
  ASSERT_OK_AND_ASSIGN(QueryResult b, ExecuteExact(t, engineering));
  // Majors don't overlap across colleges here -> empty inner join.
  ASSERT_OK_AND_ASSIGN(QueryResult diff, DiffResults(a, b));
  EXPECT_EQ(diff.num_groups(), 0u);

  // Self-join minus self = all zeros.
  ASSERT_OK_AND_ASSIGN(QueryResult zero, DiffResults(a, a));
  ASSERT_EQ(zero.num_groups(), a.num_groups());
  for (size_t i = 0; i < zero.num_groups(); ++i) {
    EXPECT_DOUBLE_EQ(zero.value(i, 0), 0.0);
  }
}

TEST(ResultJoinTest, CustomCombine) {
  QueryResult a({"v"}, {"g"}), b({"v"}, {"g"});
  ASSERT_OK(a.AddGroup(GroupKey{{1}}, "1", {10.0}));
  ASSERT_OK(a.AddGroup(GroupKey{{2}}, "2", {20.0}));
  ASSERT_OK(b.AddGroup(GroupKey{{1}}, "1", {4.0}));
  ASSERT_OK_AND_ASSIGN(
      QueryResult ratio,
      JoinResults(a, b, [](double x, double y) { return x / y; }, {"ratio"}));
  ASSERT_EQ(ratio.num_groups(), 1u);
  EXPECT_DOUBLE_EQ(ratio.value(0, 0), 2.5);
}

TEST(ResultJoinTest, MismatchedAggCountsRejected) {
  QueryResult a({"v"}, {"g"}), b({"v", "w"}, {"g"});
  EXPECT_FALSE(DiffResults(a, b).ok());
}

}  // namespace
}  // namespace cvopt
