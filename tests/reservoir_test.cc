// Tests for reservoir sampling: exact sizes, uniformity, weighted bias, and
// the edge cases of the per-stratum parallel draw (take-all, allocation 0,
// single-row strata, rows excluded by a WHERE-filtered stratification).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "src/core/stratification.h"
#include "src/sample/reservoir.h"
#include "src/sample/sampler.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(ReservoirTest, KeepsEverythingWhenUnderCapacity) {
  Rng rng(1);
  ReservoirSampler res(10, &rng);
  for (uint32_t i = 0; i < 5; ++i) res.Offer(i);
  EXPECT_EQ(res.sample().size(), 5u);
  EXPECT_EQ(res.seen(), 5u);
}

TEST(ReservoirTest, ExactCapacityWhenOverOffered) {
  Rng rng(2);
  ReservoirSampler res(100, &rng);
  for (uint32_t i = 0; i < 100000; ++i) res.Offer(i);
  EXPECT_EQ(res.sample().size(), 100u);
  // All items distinct (without replacement).
  std::set<uint32_t> s(res.sample().begin(), res.sample().end());
  EXPECT_EQ(s.size(), 100u);
}

TEST(ReservoirTest, ZeroCapacity) {
  Rng rng(3);
  ReservoirSampler res(0, &rng);
  for (uint32_t i = 0; i < 10; ++i) res.Offer(i);
  EXPECT_TRUE(res.sample().empty());
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Sample 50 of 500, 4000 repetitions: each item should be included about
  // 400 times. A loose 5-sigma band keeps the test deterministic-enough.
  const int n = 500, k = 50, reps = 4000;
  std::vector<int> hits(n, 0);
  Rng rng(4);
  for (int rep = 0; rep < reps; ++rep) {
    ReservoirSampler res(k, &rng);
    for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) res.Offer(i);
    for (uint32_t x : res.sample()) hits[x]++;
  }
  const double p = static_cast<double>(k) / n;
  const double expect = reps * p;
  const double sigma = std::sqrt(reps * p * (1 - p));
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(hits[i], expect, 5 * sigma) << "item " << i;
  }
}

TEST(WeightedReservoirTest, SizesAndDistinctness) {
  Rng rng(5);
  WeightedReservoirSampler res(20, &rng);
  for (uint32_t i = 0; i < 1000; ++i) res.Offer(i, 1.0 + i % 7);
  std::vector<uint32_t> out = res.TakeSample();
  EXPECT_EQ(out.size(), 20u);
  std::set<uint32_t> s(out.begin(), out.end());
  EXPECT_EQ(s.size(), 20u);
}

TEST(WeightedReservoirTest, SkipsNonPositiveWeights) {
  Rng rng(6);
  WeightedReservoirSampler res(5, &rng);
  res.Offer(1, 0.0);
  res.Offer(2, -1.0);
  res.Offer(3, 2.0);
  std::vector<uint32_t> out = res.TakeSample();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(WeightedReservoirTest, HeavyItemsSampledMoreOften) {
  // Items 0..9: item 9 has weight 10, others weight 1. Sampling 1 of 10
  // repeatedly, item 9 should win ~10/19 of the time.
  Rng rng(7);
  int wins = 0;
  const int reps = 5000;
  for (int rep = 0; rep < reps; ++rep) {
    WeightedReservoirSampler res(1, &rng);
    for (uint32_t i = 0; i < 10; ++i) res.Offer(i, i == 9 ? 10.0 : 1.0);
    if (res.TakeSample()[0] == 9) wins++;
  }
  const double frac = static_cast<double>(wins) / reps;
  EXPECT_NEAR(frac, 10.0 / 19.0, 0.04);
}

TEST(DrawReservoirTest, IdentityItemsMatchExplicitItems) {
  // nullptr items samples the identity sequence: same rng, same draws.
  std::vector<uint32_t> items(1000);
  std::iota(items.begin(), items.end(), 0);
  Rng rng_a(9), rng_b(9);
  std::vector<uint32_t> a(50), b(50);
  ASSERT_EQ(DrawReservoir(items.data(), items.size(), 50, &rng_a, a.data()),
            50u);
  ASSERT_EQ(DrawReservoir(nullptr, items.size(), 50, &rng_b, b.data()), 50u);
  EXPECT_EQ(a, b);
}

TEST(DrawReservoirTest, TakeAllConsumesNoDraws) {
  // n <= k copies every item and must not touch the rng — the take-all
  // path of the per-stratum draw is draw-free by contract.
  std::vector<uint32_t> items = {5, 7, 9};
  std::vector<uint32_t> out(10, 0);
  Rng rng(33), mirror(33);
  EXPECT_EQ(DrawReservoir(items.data(), 3, 10, &rng, out.data()), 3u);
  EXPECT_EQ(out[0], 5u);
  EXPECT_EQ(out[1], 7u);
  EXPECT_EQ(out[2], 9u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.Next64(), mirror.Next64());
}

TEST(DrawReservoirTest, ZeroCapacityAndZeroItems) {
  Rng rng(41);
  uint32_t sink = 123;
  EXPECT_EQ(DrawReservoir(nullptr, 100, 0, &rng, &sink), 0u);
  EXPECT_EQ(DrawReservoir(nullptr, 0, 10, &rng, &sink), 0u);
  EXPECT_EQ(sink, 123u);  // nothing written
}

TEST(DrawReservoirTest, MatchesReservoirSamplerOfferSequence) {
  // DrawReservoir is Algorithm R exactly as ReservoirSampler::Offer runs
  // it, so the same rng state yields the same sample.
  Rng rng_a(55), rng_b(55);
  ReservoirSampler res(25, &rng_a);
  for (uint32_t i = 0; i < 500; ++i) res.Offer(i);
  std::vector<uint32_t> direct(25);
  ASSERT_EQ(DrawReservoir(nullptr, 500, 25, &rng_b, direct.data()), 25u);
  EXPECT_EQ(direct, res.sample());
}

// ---------------------------------------------------------------------
// Per-stratum draw edges through DrawStratified.

TEST(DrawStratifiedEdgeTest, TakeAllEmptyAndSingleRowStrata) {
  // Strata of sizes {1, 3, 200}: allocation {1 (single-row take-all),
  // 3 (exact take-all boundary), 0 (no draws)}.
  Schema schema({{"g", DataType::kString}, {"v", DataType::kDouble}});
  TableBuilder b(schema);
  ASSERT_OK(b.AppendRow({Value("solo"), Value(1.0)}));
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(b.AppendRow({Value("trio"), Value(2.0)}));
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(b.AppendRow({Value("bulk"), Value(3.0)}));
  }
  Table t = std::move(b).Finish();
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  ASSERT_EQ(shared->num_strata(), 3u);

  Rng rng(71);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       DrawStratified(t, shared, {1, 3, 0}, "t", &rng));
  ASSERT_EQ(s.size(), 4u);
  std::vector<int> per(3, 0);
  for (uint32_t r : s.rows()) {
    ASSERT_LT(r, t.num_rows());
    per[shared->StratumOfRow(r)]++;
  }
  EXPECT_EQ(per[0], 1);  // single-row stratum: exactly its row
  EXPECT_EQ(per[1], 3);  // allocation == population: all three rows
  EXPECT_EQ(per[2], 0);  // allocation 0: no draws
  // Take-all weights are 1 (n_c / s_c with s_c == n_c).
  for (double w : s.weights()) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(DrawStratifiedEdgeTest, FilteredStratificationNeverDrawsExcludedRows) {
  // Rows failing the WHERE carry kNoStratum: they are bucketed nowhere and
  // can never be drawn, and per-stratum populations count survivors only.
  Table t = MakeSkewedTable(4, 100, /*seed=*/3);
  const PredicatePtr where =
      Predicate::Compare("v", CompareOp::kGt, Value(20.0));
  ASSERT_OK_AND_ASSIGN(Stratification strat,
                       Stratification::Build(t, {"g"}, where));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  const size_t r = shared->num_strata();
  ASSERT_GT(r, 0u);
  std::vector<uint64_t> alloc(r);
  for (size_t c = 0; c < r; ++c) {
    alloc[c] = std::max<uint64_t>(1, shared->sizes()[c] / 2);
  }
  Rng rng(73);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       DrawStratified(t, shared, alloc, "t", &rng));
  ASSERT_OK_AND_ASSIGN(const Column* v, t.ColumnByName("v"));
  std::vector<uint64_t> per(r, 0);
  for (uint32_t row : s.rows()) {
    EXPECT_GT(v->GetDouble(row), 20.0) << "excluded row drawn";
    ASSERT_NE(shared->StratumOfRow(row), Stratification::kNoStratum);
    per[shared->StratumOfRow(row)]++;
  }
  for (size_t c = 0; c < r; ++c) {
    EXPECT_EQ(per[c], std::min<uint64_t>(alloc[c], shared->sizes()[c]));
  }
}

TEST(DrawStratifiedEdgeTest, AllAllocationsZeroYieldsEmptySample) {
  Table t = MakeSkewedTable(3, 20);
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  Rng rng(79), mirror(79);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       DrawStratified(t, shared, {0, 0, 0}, "t", &rng));
  EXPECT_EQ(s.size(), 0u);
  // Only the master-seed derivation consumed randomness.
  (void)mirror.Next64();
  EXPECT_EQ(rng.Next64(), mirror.Next64());
}

TEST(DrawStratifiedEdgeTest, DrawnRowsAreDistinctWithinStrata) {
  Table t = MakeSkewedTable(6, 80, /*seed=*/11);
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  std::vector<uint64_t> alloc(shared->num_strata());
  for (size_t c = 0; c < alloc.size(); ++c) alloc[c] = shared->sizes()[c] / 3;
  Rng rng(83);
  ASSERT_OK_AND_ASSIGN(StratifiedSample s,
                       DrawStratified(t, shared, alloc, "t", &rng));
  std::set<uint32_t> distinct(s.rows().begin(), s.rows().end());
  EXPECT_EQ(distinct.size(), s.rows().size());
}

}  // namespace
}  // namespace cvopt
