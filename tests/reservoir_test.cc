// Tests for reservoir sampling: exact sizes, uniformity, and weighted bias.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/sample/reservoir.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(ReservoirTest, KeepsEverythingWhenUnderCapacity) {
  Rng rng(1);
  ReservoirSampler res(10, &rng);
  for (uint32_t i = 0; i < 5; ++i) res.Offer(i);
  EXPECT_EQ(res.sample().size(), 5u);
  EXPECT_EQ(res.seen(), 5u);
}

TEST(ReservoirTest, ExactCapacityWhenOverOffered) {
  Rng rng(2);
  ReservoirSampler res(100, &rng);
  for (uint32_t i = 0; i < 100000; ++i) res.Offer(i);
  EXPECT_EQ(res.sample().size(), 100u);
  // All items distinct (without replacement).
  std::set<uint32_t> s(res.sample().begin(), res.sample().end());
  EXPECT_EQ(s.size(), 100u);
}

TEST(ReservoirTest, ZeroCapacity) {
  Rng rng(3);
  ReservoirSampler res(0, &rng);
  for (uint32_t i = 0; i < 10; ++i) res.Offer(i);
  EXPECT_TRUE(res.sample().empty());
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Sample 50 of 500, 4000 repetitions: each item should be included about
  // 400 times. A loose 5-sigma band keeps the test deterministic-enough.
  const int n = 500, k = 50, reps = 4000;
  std::vector<int> hits(n, 0);
  Rng rng(4);
  for (int rep = 0; rep < reps; ++rep) {
    ReservoirSampler res(k, &rng);
    for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) res.Offer(i);
    for (uint32_t x : res.sample()) hits[x]++;
  }
  const double p = static_cast<double>(k) / n;
  const double expect = reps * p;
  const double sigma = std::sqrt(reps * p * (1 - p));
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(hits[i], expect, 5 * sigma) << "item " << i;
  }
}

TEST(WeightedReservoirTest, SizesAndDistinctness) {
  Rng rng(5);
  WeightedReservoirSampler res(20, &rng);
  for (uint32_t i = 0; i < 1000; ++i) res.Offer(i, 1.0 + i % 7);
  std::vector<uint32_t> out = res.TakeSample();
  EXPECT_EQ(out.size(), 20u);
  std::set<uint32_t> s(out.begin(), out.end());
  EXPECT_EQ(s.size(), 20u);
}

TEST(WeightedReservoirTest, SkipsNonPositiveWeights) {
  Rng rng(6);
  WeightedReservoirSampler res(5, &rng);
  res.Offer(1, 0.0);
  res.Offer(2, -1.0);
  res.Offer(3, 2.0);
  std::vector<uint32_t> out = res.TakeSample();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(WeightedReservoirTest, HeavyItemsSampledMoreOften) {
  // Items 0..9: item 9 has weight 10, others weight 1. Sampling 1 of 10
  // repeatedly, item 9 should win ~10/19 of the time.
  Rng rng(7);
  int wins = 0;
  const int reps = 5000;
  for (int rep = 0; rep < reps; ++rep) {
    WeightedReservoirSampler res(1, &rng);
    for (uint32_t i = 0; i < 10; ++i) res.Offer(i, i == 9 ? 10.0 : 1.0);
    if (res.TakeSample()[0] == 9) wins++;
  }
  const double frac = static_cast<double>(wins) / reps;
  EXPECT_NEAR(frac, 10.0 / 19.0, 0.04);
}

}  // namespace
}  // namespace cvopt
