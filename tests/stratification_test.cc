// Tests for src/core/stratification: finest stratification and projections.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/stratification.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(StratificationTest, SingleStringAttr) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {"major"}));
  EXPECT_EQ(s.num_strata(), 4u);
  const uint64_t total =
      std::accumulate(s.sizes().begin(), s.sizes().end(), uint64_t{0});
  EXPECT_EQ(total, t.num_rows());
  for (uint64_t sz : s.sizes()) EXPECT_EQ(sz, 2u);
}

TEST(StratificationTest, CompositeKey) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s,
                       Stratification::Build(t, {"major", "college"}));
  // major determines college here, so still 4 strata.
  EXPECT_EQ(s.num_strata(), 4u);
  // Labels render both attributes.
  bool found = false;
  for (size_t c = 0; c < s.num_strata(); ++c) {
    if (s.Label(c) == "CS|Science") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(StratificationTest, IntAttr) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {"age"}));
  EXPECT_EQ(s.num_strata(), 8u);  // all ages distinct
}

TEST(StratificationTest, EmptyAttrsIsOneStratum) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {}));
  EXPECT_EQ(s.num_strata(), 1u);
  EXPECT_EQ(s.sizes()[0], 8u);
  for (size_t r = 0; r < t.num_rows(); ++r) EXPECT_EQ(s.StratumOfRow(r), 0u);
}

TEST(StratificationTest, RowStrataConsistentWithKeys) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {"college"}));
  ASSERT_OK_AND_ASSIGN(const Column* college, t.ColumnByName("college"));
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const uint32_t c = s.StratumOfRow(r);
    EXPECT_EQ(s.key(c).codes[0], college->GetCode(r));
  }
}

TEST(StratificationTest, RejectsDoubleColumn) {
  Table t = MakeStudentTable();
  EXPECT_FALSE(Stratification::Build(t, {"gpa"}).ok());
  EXPECT_FALSE(Stratification::Build(t, {"missing"}).ok());
}

TEST(StratificationTest, ProjectOntoSubset) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s,
                       Stratification::Build(t, {"major", "college"}));
  ASSERT_OK_AND_ASSIGN(Stratification::Projection proj, s.Project({"college"}));
  EXPECT_EQ(proj.num_parents(), 2u);
  // Parent sizes: 4 rows per college.
  for (uint64_t sz : proj.parent_sizes) EXPECT_EQ(sz, 4u);
  // Every stratum maps to the college its major belongs to.
  for (size_t c = 0; c < s.num_strata(); ++c) {
    const uint32_t parent = proj.stratum_to_parent[c];
    const std::string parent_label =
        proj.parent_keys[parent].Render(t, proj.parent_column_indices);
    const std::string strat_label = s.Label(c);
    EXPECT_NE(strat_label.find(parent_label), std::string::npos)
        << strat_label << " vs " << parent_label;
  }
}

TEST(StratificationTest, ProjectOntoEmptyIsFullTable) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {"major"}));
  ASSERT_OK_AND_ASSIGN(Stratification::Projection proj, s.Project({}));
  EXPECT_EQ(proj.num_parents(), 1u);
  EXPECT_EQ(proj.parent_sizes[0], 8u);
}

TEST(StratificationTest, ProjectRejectsForeignAttr) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {"major"}));
  EXPECT_FALSE(s.Project({"college"}).ok());
}

TEST(StratificationTest, ProjectIdentity) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(Stratification s,
                       Stratification::Build(t, {"major", "college"}));
  ASSERT_OK_AND_ASSIGN(Stratification::Projection proj,
                       s.Project({"major", "college"}));
  EXPECT_EQ(proj.num_parents(), s.num_strata());
  for (size_t c = 0; c < s.num_strata(); ++c) {
    EXPECT_EQ(proj.parent_sizes[proj.stratum_to_parent[c]], s.sizes()[c]);
  }
}

TEST(UnionAttrsTest, PreservesOrderAndDedupes) {
  EXPECT_EQ(UnionAttrs({{"a", "b"}, {"b", "c"}, {"a"}}),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(UnionAttrs({}), (std::vector<std::string>{}));
  EXPECT_EQ(UnionAttrs({{}, {"x"}}), (std::vector<std::string>{"x"}));
}

TEST(StratificationTest, LargerTableStrataSizes) {
  Table t = MakeSkewedTable(5, 10);
  ASSERT_OK_AND_ASSIGN(Stratification s, Stratification::Build(t, {"g"}));
  EXPECT_EQ(s.num_strata(), 5u);
  // Group g has (g+1)*10 rows; match by key code.
  for (size_t c = 0; c < s.num_strata(); ++c) {
    const int64_t g = s.key(c).codes[0];
    EXPECT_EQ(s.sizes()[c], static_cast<uint64_t>((g + 1) * 10));
  }
}

}  // namespace
}  // namespace cvopt
