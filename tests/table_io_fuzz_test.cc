// Fuzz-style robustness tests for the v2 chunked table file reader: any
// truncation or byte corruption must yield a clean Status (or a successful
// parse of still-consistent data) — never a crash, hang, or out-of-bounds
// read. The loops are deliberately exhaustive over a small file so the
// ASan/UBSan jobs in tools/run_sanitizers.sh sweep every parser branch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/table/mapped_table.h"
#include "src/table/table_builder.h"
#include "src/table/table_io.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

// A small but representative table: negative ints, NaN / -0.0 doubles,
// dictionary strings — every codec and zone-map flavor appears.
Table MakeFuzzTable() {
  Schema schema({{"k", DataType::kInt64},
                 {"v", DataType::kDouble},
                 {"s", DataType::kString}});
  TableBuilder b(schema);
  Rng rng(2024);
  const char* names[] = {"alpha", "beta", "gamma", "delta"};
  for (int i = 0; i < 600; ++i) {
    double v = rng.NextGaussian();
    if (i % 97 == 0) v = std::numeric_limits<double>::quiet_NaN();
    if (i % 101 == 0) v = -0.0;
    Status st = b.AppendRow({Value(static_cast<int64_t>(i % 37 - 18)),
                             Value(v), Value(names[i % 4])});
    CVOPT_CHECK(st.ok(), "append failed");
  }
  return std::move(b).Finish();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Opens and fully exercises the reader; the only requirement is a clean
// Status on every failure path (sanitizers verify no OOB access).
void ExerciseReader(const std::string& path) {
  auto mapped = MappedTable::Open(path);
  if (!mapped.ok()) return;
  for (size_t c = 0; c < mapped->num_columns(); ++c) {
    for (size_t k = 0; k < mapped->num_chunks(); ++k) {
      auto chunk = mapped->GetChunk(c, k);
      if (!chunk.ok()) return;  // lazy payload validation caught it
    }
  }
  (void)mapped->Materialize();
}

class TableIoFuzzTest : public testing::Test {
 protected:
  void SetUp() override {
    // Small chunks -> many chunks, small file -> exhaustive loops stay fast.
    SetDefaultChunkRowsForTesting(64);
    table_ = std::make_unique<Table>(MakeFuzzTable());
    path_ = TempPath("fuzz.cvtb");
    ASSERT_OK(WriteTableFile(*table_, path_));
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 100u);
  }
  void TearDown() override {
    SetDefaultChunkRowsForTesting(0);
    std::remove(path_.c_str());
    std::remove(mutated_.c_str());
  }

  std::unique_ptr<Table> table_;
  std::string path_;
  std::string bytes_;
  std::string mutated_ = TempPath("fuzz_mut.cvtb");
};

TEST_F(TableIoFuzzTest, EveryTruncationFailsCleanly) {
  // The directory pins every payload to an in-bounds [off, off+len) span,
  // so any proper prefix must be rejected at Open or on first decode.
  for (size_t len = 0; len < bytes_.size(); ++len) {
    WriteAll(mutated_, bytes_.substr(0, len));
    auto mapped = MappedTable::Open(mutated_);
    if (!mapped.ok()) continue;
    bool any_error = false;
    for (size_t c = 0; c < mapped->num_columns() && !any_error; ++c) {
      for (size_t k = 0; k < mapped->num_chunks() && !any_error; ++k) {
        any_error = !mapped->GetChunk(c, k).ok();
      }
    }
    EXPECT_TRUE(any_error) << "truncation to " << len << " parsed fully";
  }
}

TEST_F(TableIoFuzzTest, EverySingleByteFlipIsHandled) {
  for (size_t pos = 0; pos < bytes_.size(); ++pos) {
    std::string mut = bytes_;
    mut[pos] = static_cast<char>(mut[pos] ^ 0xFF);
    WriteAll(mutated_, mut);
    ExerciseReader(mutated_);  // must not crash; errors are fine
  }
}

TEST_F(TableIoFuzzTest, RandomMultiByteCorruptions) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mut = bytes_;
    const size_t edits = 1 + rng.Uniform(8);
    for (size_t e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mut.size());
      mut[pos] = static_cast<char>(rng.Next64());
    }
    WriteAll(mutated_, mut);
    ExerciseReader(mutated_);
  }
}

TEST_F(TableIoFuzzTest, ReadTableFileSurvivesCorruption) {
  // The high-level entry point (header dispatch + Materialize) gets the
  // same treatment on a strided sweep.
  for (size_t pos = 0; pos < bytes_.size(); pos += 7) {
    std::string mut = bytes_;
    mut[pos] = static_cast<char>(mut[pos] + 1);
    WriteAll(mutated_, mut);
    (void)ReadTableFile(mutated_);
  }
}

TEST_F(TableIoFuzzTest, IntactFileStillRoundTrips) {
  // Sanity anchor for the fuzz fixture itself.
  ASSERT_OK_AND_ASSIGN(Table back, ReadTableFile(path_));
  ASSERT_EQ(back.num_rows(), table_->num_rows());
  for (size_t c = 0; c < table_->num_columns(); ++c) {
    for (size_t r = 0; r < table_->num_rows(); ++r) {
      const Value a = table_->column(c).GetValue(r);
      const Value b = back.column(c).GetValue(r);
      if (table_->schema().field(c).type == DataType::kDouble) {
        const double da = a.AsDouble();
        const double db = b.AsDouble();
        ASSERT_TRUE((std::isnan(da) && std::isnan(db)) || da == db);
      } else {
        ASSERT_TRUE(a == b);
      }
    }
  }
}

}  // namespace
}  // namespace cvopt
