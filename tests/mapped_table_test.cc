// MappedTable (mmap-backed v2 reader), the decoded-chunk LRU cache, the
// out-of-core group-by scan, v1 compatibility, and the plan-cache reload
// guard.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "src/exec/chunked_scan.h"
#include "src/exec/group_by_executor.h"
#include "src/expr/compiled_predicate.h"
#include "src/expr/plan_cache.h"
#include "src/table/mapped_table.h"
#include "src/table/table_builder.h"
#include "src/table/table_io.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

class ScopedChunkRows {
 public:
  explicit ScopedChunkRows(size_t rows) { SetDefaultChunkRowsForTesting(rows); }
  ~ScopedChunkRows() { SetDefaultChunkRowsForTesting(0); }
};

class ScopedCacheBudget {
 public:
  explicit ScopedCacheBudget(size_t bytes) {
    SetChunkCacheBudgetForTesting(bytes);
  }
  ~ScopedCacheBudget() { SetChunkCacheBudgetForTesting(0); }
};

Table MakeDataset(size_t rows) {
  Schema schema({{"t", DataType::kInt64},
                 {"city", DataType::kString},
                 {"v", DataType::kDouble},
                 {"n", DataType::kInt64}});
  TableBuilder b(schema);
  Rng rng(1234);
  const char* cities[] = {"lisbon", "oslo", "quito", "hanoi", "perth", "kyiv"};
  for (size_t i = 0; i < rows; ++i) {
    double v = 10.0 + 2.0 * rng.NextGaussian();
    if (i % 211 == 0) v = std::numeric_limits<double>::quiet_NaN();
    Status st = b.AppendRow({Value(static_cast<int64_t>(i)),
                             Value(cities[(i / 250) % 6]), Value(v),
                             Value(static_cast<int64_t>(rng.Uniform(50)))});
    CVOPT_CHECK(st.ok(), "append failed");
  }
  return std::move(b).Finish();
}

std::vector<QuerySpec> MakeQueries() {
  std::vector<QuerySpec> qs;
  {
    QuerySpec q;
    q.name = "all-aggs";
    q.group_by = {"city"};
    q.aggregates = {AggSpec::Avg("v"),    AggSpec::Sum("n"),
                    AggSpec::Count(),     AggSpec::Variance("v"),
                    AggSpec::Median("v"),
                    AggSpec::CountIf(
                        Predicate::Compare("n", CompareOp::kLt, Value(int64_t{10})))};
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "narrow-where";
    q.group_by = {"city"};
    q.aggregates = {AggSpec::Count(), AggSpec::Sum("v")};
    q.where =
        Predicate::Between("t", Value(int64_t{9'000}), Value(int64_t{9'299}));
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "composite-key";
    q.group_by = {"city", "n"};
    q.aggregates = {AggSpec::Avg("v"), AggSpec::Count()};
    q.where = Predicate::Compare("n", CompareOp::kLt, Value(int64_t{5}));
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "no-groups";
    q.aggregates = {AggSpec::Count(), AggSpec::Avg("n")};
    q.where = Predicate::Compare("city", CompareOp::kEq, Value("oslo"));
    qs.push_back(q);
  }
  return qs;
}

void ExpectResultsIdentical(const QueryResult& a, const QueryResult& b,
                            const std::string& what) {
  ASSERT_EQ(a.num_groups(), b.num_groups()) << what;
  ASSERT_EQ(a.num_aggregates(), b.num_aggregates()) << what;
  for (size_t g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.label(g), b.label(g)) << what << " group " << g;
    const std::vector<double> va = a.values(g);
    const std::vector<double> vb = b.values(g);
    ASSERT_EQ(va.size(), vb.size());
    EXPECT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)), 0)
        << what << " group " << g << " (" << a.label(g) << ")";
  }
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema() == b.schema());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (a.schema().field(c).type == DataType::kDouble) {
        const double x = a.column(c).GetDouble(r);
        const double y = b.column(c).GetDouble(r);
        uint64_t bx, by;
        std::memcpy(&bx, &x, 8);
        std::memcpy(&by, &y, 8);
        ASSERT_EQ(bx, by) << "col " << c << " row " << r;
      } else {
        ASSERT_TRUE(a.column(c).GetValue(r) == b.column(c).GetValue(r))
            << "col " << c << " row " << r;
      }
    }
  }
}

TEST(MappedTableTest, OpenExposesFileGeometry) {
  ScopedChunkRows cs(256);
  Table t = MakeDataset(2'000);
  const std::string path = TempPath("geom.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  EXPECT_EQ(mt.num_rows(), 2'000u);
  EXPECT_EQ(mt.num_columns(), 4u);
  EXPECT_EQ(mt.chunk_rows(), 256u);
  EXPECT_EQ(mt.num_chunks(), 8u);
  EXPECT_EQ(mt.ChunkRowCount(6), 256u);
  EXPECT_EQ(mt.ChunkRowCount(7), 2'000u - 7 * 256u);
  EXPECT_EQ(mt.dictionary(1).size(), 6u);  // city
  EXPECT_TRUE(mt.dictionary(0).empty());   // numeric column
  std::remove(path.c_str());
}

TEST(MappedTableTest, MaterializeRoundTripsBitExactly) {
  ScopedChunkRows cs(512);
  Table t = MakeDataset(5'000);
  const std::string path = TempPath("mat.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  ASSERT_OK_AND_ASSIGN(Table back, mt.Materialize());
  ExpectTablesEqual(t, back);
  std::remove(path.c_str());
}

TEST(MappedTableTest, V1FilesStillRead) {
  Table t = MakeDataset(1'500);
  const std::string path = TempPath("legacy.cvtb");
  ASSERT_OK(WriteTableFileV1(t, path));
  ASSERT_OK_AND_ASSIGN(Table back, ReadTableFile(path));
  ExpectTablesEqual(t, back);
  std::remove(path.c_str());
}

TEST(MappedTableTest, ChunkCacheHitsEvictsAndInvalidates) {
  ScopedChunkRows cs(256);
  Table t = MakeDataset(8'192);  // 32 chunks x 4 cols
  const std::string path = TempPath("cache.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  // Budget of ~4 chunks of int64 data: decoding one full column must evict.
  ScopedCacheBudget budget(4 * 256 * sizeof(int64_t));
  ResetChunkCacheStats();
  {
    ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
    for (size_t k = 0; k < mt.num_chunks(); ++k) {
      ASSERT_OK_AND_ASSIGN(std::shared_ptr<const DecodedChunk> c,
                           mt.GetChunk(0, k));
      EXPECT_EQ(c->ints.size(), mt.ChunkRowCount(k));
    }
    ChunkCacheStats stats = GetChunkCacheStats();
    EXPECT_EQ(stats.misses, 32u);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.resident_bytes, 4u * 256 * sizeof(int64_t));
    // Re-reading the most recent chunk hits.
    ASSERT_OK(mt.GetChunk(0, mt.num_chunks() - 1).status());
    EXPECT_EQ(GetChunkCacheStats().hits, stats.hits + 1);
  }
  // Destruction invalidates this table's entries.
  EXPECT_EQ(GetChunkCacheStats().resident_bytes, 0u);
  std::remove(path.c_str());
}

TEST(MappedTableTest, EvictedChunkStaysAliveForHolders) {
  ScopedChunkRows cs(256);
  Table t = MakeDataset(4'096);
  const std::string path = TempPath("pin.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ScopedCacheBudget budget(1);  // evict aggressively
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const DecodedChunk> held,
                       mt.GetChunk(0, 0));
  for (size_t k = 0; k < mt.num_chunks(); ++k) {
    ASSERT_OK(mt.GetChunk(2, k).status());
  }
  // `held` was evicted from the cache long ago but the shared_ptr keeps it.
  EXPECT_EQ(held->ints.size(), 256u);
  EXPECT_EQ(held->ints[0], 0);
  std::remove(path.c_str());
}

TEST(MappedTableTest, OutOfCoreGroupByMatchesExactBitwise) {
  for (size_t chunk_rows : {size_t{256}, size_t{1000}, size_t{4096}}) {
    ScopedChunkRows cs(chunk_rows);
    Table t = MakeDataset(20'000);
    const std::string path = TempPath("ooc.cvtb");
    ASSERT_OK(WriteTableFile(t, path));
    ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
    ScopedExecThreads serial(1);
    for (const auto& q : MakeQueries()) {
      ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(t, q));
      ASSERT_OK_AND_ASSIGN(QueryResult mapped, ExecuteGroupByMapped(mt, q));
      ExpectResultsIdentical(
          exact, mapped, q.name + " chunk=" + std::to_string(chunk_rows));
    }
    std::remove(path.c_str());
  }
}

TEST(MappedTableTest, OutOfCoreGroupByUnderTinyCacheBudget) {
  // Correctness must not depend on the cache: a 1-byte budget forces every
  // chunk through decode (and immediate eviction).
  ScopedChunkRows cs(512);
  Table t = MakeDataset(10'000);
  const std::string path = TempPath("tiny.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ScopedCacheBudget budget(1);
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  for (const auto& q : MakeQueries()) {
    ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(t, q));
    ASSERT_OK_AND_ASSIGN(QueryResult mapped, ExecuteGroupByMapped(mt, q));
    ExpectResultsIdentical(exact, mapped, q.name + " tiny-cache");
  }
  std::remove(path.c_str());
}

TEST(MappedTableTest, OutOfCoreGroupByWithZonePruningDisabled) {
  ScopedChunkRows cs(500);
  Table t = MakeDataset(15'000);
  const std::string path = TempPath("nozone.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  SetZoneMapPruningEnabled(false);
  for (const auto& q : MakeQueries()) {
    ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(t, q));
    ASSERT_OK_AND_ASSIGN(QueryResult mapped, ExecuteGroupByMapped(mt, q));
    ExpectResultsIdentical(exact, mapped, q.name + " zones-off");
  }
  SetZoneMapPruningEnabled(true);
  std::remove(path.c_str());
}

// The morsel-parallel out-of-core scan must be bit-identical to the serial
// one at every thread count, even when a 1-byte cache budget forces every
// chunk through a fresh decode in both phases.
TEST(MappedTableTest, OutOfCoreGroupByParallelMatchesSerialTinyCache) {
  ScopedChunkRows cs(512);
  Table t = MakeDataset(20'000);
  const std::string path = TempPath("par.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ScopedCacheBudget budget(1);
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  for (const auto& q : MakeQueries()) {
    QueryResult serial = [&] {
      ScopedExecThreads st(1);
      auto r = ExecuteGroupByMapped(mt, q);
      CVOPT_CHECK(r.ok(), "serial mapped scan failed");
      return std::move(r).value();
    }();
    for (int threads : {2, 3, 8}) {
      ScopedExecThreads pt(threads);
      ASSERT_OK_AND_ASSIGN(QueryResult parallel, ExecuteGroupByMapped(mt, q));
      ExpectResultsIdentical(
          serial, parallel,
          q.name + " threads=" + std::to_string(threads));
    }
  }
  std::remove(path.c_str());
}

// Predicate-pushdown materialization: chunks the zone maps refute are
// never decoded (the clustered `t` column refutes 29 of 32 chunks for this
// range), and the surviving rows equal filter-then-take on the full table.
TEST(MappedTableTest, PushdownMaterializeSkipsRefutedChunks) {
  ScopedChunkRows cs(256);
  Table t = MakeDataset(8'192);  // t = 0..8191 clustered; 32 chunks x 4 cols
  const std::string path = TempPath("push.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  const PredicatePtr where =
      Predicate::Between("t", Value(int64_t{1'000}), Value(int64_t{1'499}));

  ResetChunkCacheStats();
  ASSERT_OK_AND_ASSIGN(Table filtered, mt.Materialize(*where));
  // Rows 1000..1499 live in chunks 3..5; only those decode — and every
  // decode is a cache miss (fresh table), so misses count decoded chunks.
  const ChunkCacheStats stats = GetChunkCacheStats();
  EXPECT_EQ(stats.misses, 3u * 4u);
  EXPECT_EQ(filtered.num_rows(), 500u);

  // Equality against the unpruned path: materialize fully, filter, take.
  ASSERT_OK_AND_ASSIGN(Table full, mt.Materialize());
  ASSERT_OK_AND_ASSIGN(CompiledPredicate cp,
                       CompiledPredicate::Compile(full, *where));
  ExpectTablesEqual(filtered, full.TakeRows(cp.Select()));
  std::remove(path.c_str());
}

TEST(MappedTableTest, PushdownMaterializeHandlesResidualAndTakeAll) {
  ScopedChunkRows cs(256);
  Table t = MakeDataset(4'096);
  const std::string path = TempPath("push2.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  ASSERT_OK_AND_ASSIGN(Table full, mt.Materialize());
  // Unclustered string predicate: zone maps refute nothing, every chunk is
  // residual, the kernel does the filtering.
  const PredicatePtr by_city =
      Predicate::Compare("city", CompareOp::kEq, Value("oslo"));
  ASSERT_OK_AND_ASSIGN(Table oslo, mt.Materialize(*by_city));
  {
    ASSERT_OK_AND_ASSIGN(CompiledPredicate cp,
                         CompiledPredicate::Compile(full, *by_city));
    ExpectTablesEqual(oslo, full.TakeRows(cp.Select()));
  }
  // Always-true range: every chunk is provably accepted (no kernel pass)
  // and the result is the whole table.
  const PredicatePtr all =
      Predicate::Compare("t", CompareOp::kGe, Value(int64_t{0}));
  ASSERT_OK_AND_ASSIGN(Table everything, mt.Materialize(*all));
  ExpectTablesEqual(everything, full);
  // Invalid predicates surface as a Status, not a crash.
  const PredicatePtr bad =
      Predicate::Compare("nope", CompareOp::kEq, Value(int64_t{1}));
  EXPECT_FALSE(mt.Materialize(*bad).ok());
  std::remove(path.c_str());
}

// TakeRows against the mapped file decodes only the chunks the row list
// touches — how a stratified sample of a mapped base materializes without
// paying for the base.
TEST(MappedTableTest, TakeRowsDecodesOnlyTouchedChunks) {
  ScopedChunkRows cs(256);
  Table t = MakeDataset(8'192);
  const std::string path = TempPath("take.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  // Interleaved rows from chunks 20 and 0, out of order and repeating.
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < 10; ++i) {
    rows.push_back(5'120 + i);  // chunk 20
    rows.push_back(9 - i);      // chunk 0
  }
  rows.push_back(rows[0]);
  ResetChunkCacheStats();
  ASSERT_OK_AND_ASSIGN(Table sub, mt.TakeRows(rows));
  // Two chunks touched across 4 columns; re-touches are cache hits.
  const ChunkCacheStats stats = GetChunkCacheStats();
  EXPECT_EQ(stats.misses, 2u * 4u);
  ExpectTablesEqual(sub, t.TakeRows(rows));
  EXPECT_FALSE(mt.TakeRows({8'192}).ok());  // out of range
  std::remove(path.c_str());
}

TEST(MappedTableTest, OutOfCoreGroupByRejectsBadQueries) {
  ScopedChunkRows cs(512);
  Table t = MakeDataset(1'000);
  const std::string path = TempPath("badq.cvtb");
  ASSERT_OK(WriteTableFile(t, path));
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path));
  QuerySpec q;
  EXPECT_FALSE(ExecuteGroupByMapped(mt, q).ok());  // no aggregates
  q.aggregates = {AggSpec::Avg("city")};           // string aggregation
  EXPECT_FALSE(ExecuteGroupByMapped(mt, q).ok());
  q.aggregates = {AggSpec::Count()};
  q.group_by = {"v"};  // double grouping
  EXPECT_FALSE(ExecuteGroupByMapped(mt, q).ok());
  q.group_by = {"nope"};  // unknown column
  EXPECT_FALSE(ExecuteGroupByMapped(mt, q).ok());
  std::remove(path.c_str());
}

// The satellite regression: a table written, destroyed, and reloaded gets a
// fresh Table::id(), so the reloaded table can never be served a stale plan
// whose column pointers belonged to the destroyed original.
TEST(MappedTableTest, ReloadedTableNeverHitsStalePlanCacheEntry) {
  ClearPlanCache();
  const std::string path = TempPath("reload.cvtb");
  const PredicatePtr pred =
      Predicate::Compare("t", CompareOp::kLt, Value(int64_t{500}));
  uint64_t first_id = 0;
  {
    Table t = MakeDataset(2'000);
    first_id = t.id();
    ASSERT_OK(WriteTableFile(t, path));
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> plan,
                         CompilePredicateCached(t, pred));
    EXPECT_EQ(plan->Select().size(), 500u);
  }  // original table (and its column storage) destroyed here
  const PlanCacheStats before = GetPlanCacheStats();
  EXPECT_EQ(before.misses, 1u);

  ASSERT_OK_AND_ASSIGN(Table reloaded, ReadTableFile(path));
  EXPECT_NE(reloaded.id(), first_id);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> plan2,
                       CompilePredicateCached(reloaded, pred));
  // A fresh compile, not a stale hit: same hit count, one more miss.
  const PlanCacheStats after = GetPlanCacheStats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(plan2->Select().size(), 500u);
  ClearPlanCache();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cvopt
