// End-to-end governance coverage: within-budget governed queries are
// bit-identical to ungoverned runs at every thread count; deadline /
// cancellation / budget violations come back as typed Status without
// crashing or deadlocking; a poisoned morsel halts the pool promptly; the
// in-memory -> out-of-core group-by degradation preserves results exactly;
// partial (deadline-degraded) draws flag their shortfall; and an injected
// mid-query fault leaves the plan cache and decoded-chunk LRU intact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "src/aqp/engine.h"
#include "src/estimate/approx_executor.h"
#include "src/exec/chunked_scan.h"
#include "src/exec/group_by_executor.h"
#include "src/exec/query_context.h"
#include "src/sample/sampler.h"
#include "src/stats/stats_collector.h"
#include "src/table/mapped_table.h"
#include "src/table/table_io.h"
#include "src/util/failpoint.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

namespace fp = failpoint;

QuerySpec GroupQuery() {
  QuerySpec q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec::Avg("v"), AggSpec::Count(), AggSpec::Variance("v")};
  return q;
}

QuerySpec FilteredQuery() {
  QuerySpec q = GroupQuery();
  q.where = Predicate::Compare("v", CompareOp::kGt, Value(5.0));
  return q;
}

// Bitwise equality of two results: same groups in the same order, with
// value doubles compared by representation, not tolerance.
void ExpectBitIdentical(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  ASSERT_EQ(a.num_aggregates(), b.num_aggregates());
  for (size_t i = 0; i < a.num_groups(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    for (size_t j = 0; j < a.num_aggregates(); ++j) {
      const double x = a.value(i, j);
      const double y = b.value(i, j);
      EXPECT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
          << "group " << a.label(i) << " agg " << j << ": " << x << " vs "
          << y;
    }
  }
}

// Configures a context that cannot plausibly fire: governance installed,
// never binding. (QueryContext holds atomics, so it is configured in
// place rather than returned by value.)
void MakePermissive(QueryContext* ctx) {
  ctx->set_timeout(std::chrono::hours(24));
  ctx->set_memory_limit(uint64_t{1} << 40);
}

TEST(GovernanceDeterminismTest, GovernedWithinBudgetBitIdentical) {
  Table t = MakeSkewedTable(12, 300);
  for (int threads : {1, 2, 3, 8}) {
    ScopedExecThreads scope(threads);
    for (const QuerySpec& q : {GroupQuery(), FilteredQuery()}) {
      ASSERT_OK_AND_ASSIGN(QueryResult plain, ExecuteExact(t, q));
      QueryContext ctx;
      MakePermissive(&ctx);
      ScopedQueryContext install(&ctx);
      ASSERT_OK_AND_ASSIGN(QueryResult governed, ExecuteExact(t, q));
      ExpectBitIdentical(plain, governed);
      EXPECT_GT(ctx.checks_performed(), 0u) << "governance never consulted";
      EXPECT_EQ(ctx.budget().used(), 0u) << "reservation leaked";
      EXPECT_GT(ctx.budget().peak(), 0u) << "nothing was ever reserved";
    }
  }
}

TEST(GovernanceDeterminismTest, GovernedApproxPipelineBitIdentical) {
  Table t = MakeSkewedTable(10, 250);
  QuerySpec q = GroupQuery();
  auto run = [&](const QueryContext* ctx) -> QueryResult {
    ScopedQueryContext install(ctx);
    auto strat_r = Stratification::Build(t, {"g"});
    CVOPT_CHECK(strat_r.ok(), "stratification failed");
    auto shared = std::make_shared<Stratification>(std::move(strat_r).value());
    std::vector<uint64_t> sizes(shared->num_strata(), 50);
    Rng rng(97);
    auto sample_r = DrawStratified(t, shared, sizes, "test", &rng);
    CVOPT_CHECK(sample_r.ok(), "draw failed");
    auto result_r = ExecuteApprox(sample_r.value(), q);
    CVOPT_CHECK(result_r.ok(), "approx failed");
    return std::move(result_r).value();
  };
  for (int threads : {1, 3, 8}) {
    ScopedExecThreads scope(threads);
    QueryResult plain = run(nullptr);
    QueryContext ctx;
    MakePermissive(&ctx);
    QueryResult governed = run(&ctx);
    ExpectBitIdentical(plain, governed);
  }
}

TEST(GovernanceAbortTest, PreCancelledQueryReturnsCancelled) {
  Table t = MakeSkewedTable(6, 100);
  QueryContext ctx;
  ctx.Cancel();
  ScopedQueryContext install(&ctx);
  Result<QueryResult> r = ExecuteExact(t, GroupQuery());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(GovernanceAbortTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  Table t = MakeSkewedTable(6, 100);
  QueryContext ctx;
  ctx.set_deadline(QueryContext::Clock::now() - std::chrono::seconds(1));
  ScopedQueryContext install(&ctx);
  Result<QueryResult> r = ExecuteExact(t, GroupQuery());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernanceAbortTest, TinyBudgetReturnsResourceExhausted) {
  Table t = MakeSkewedTable(8, 200);
  QueryContext ctx;
  ctx.set_memory_limit(64);  // nothing real fits
  ScopedQueryContext install(&ctx);
  Result<QueryResult> r = ExecuteExact(t, GroupQuery());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.budget().used(), 0u);  // the refused charge rolled back
}

TEST(GovernanceAbortTest, AbortPropagatesFromParallelWorkers) {
  // Cancel from another thread mid-query; the morsel boundaries must
  // surface kCancelled without hanging the pool. The cancel lands before
  // the query starts or mid-flight — both must yield kCancelled.
  Table t = MakeSkewedTable(12, 500);
  ScopedExecThreads scope(4, 128);
  {
    QueryContext ctx;
    ScopedQueryContext install(&ctx);
    std::thread canceller([&] { ctx.Cancel(); });
    Result<QueryResult> r = ExecuteExact(t, GroupQuery());
    canceller.join();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    }
  }
  // Either way the pool must still be serviceable afterwards (ungoverned).
  ASSERT_OK_AND_ASSIGN(QueryResult again, ExecuteExact(t, GroupQuery()));
  EXPECT_GT(again.num_groups(), 0u);
}

TEST(GovernanceAbortTest, PoisonedMorselHaltsPoolPromptly) {
  // A morsel body that fails must poison its batch: siblings check out
  // without running, the exception resurfaces on the submitting thread,
  // and nothing deadlocks. With 1000 tiny chunks and a failure planted in
  // chunk 3, the executed count must stay far below the total.
  ScopedExecThreads scope(4, 1);
  constexpr size_t kChunks = 1000;
  std::atomic<size_t> executed{0};
  bool threw = false;
  try {
    ParallelForChunks(kChunks, kChunks, [&](size_t c, size_t, size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (c == 3) throw std::runtime_error("poisoned morsel");
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "poisoned morsel");
  }
  EXPECT_TRUE(threw);
  EXPECT_LT(executed.load(), kChunks / 2)
      << "early-exit flag did not stop sibling morsels";
  // The pool survives for the next caller.
  std::atomic<size_t> after{0};
  ParallelForChunks(64, 64, [&](size_t, size_t, size_t) { after++; });
  EXPECT_EQ(after.load(), 64u);
}

TEST(GovernanceAbortTest, InjectedFaultSurfacesThroughGovernedSection) {
  // A failpoint planted in the accumulator-allocation path aborts the
  // query with its typed status, mid-flight, with sanitizers clean.
  Table t = MakeSkewedTable(8, 200);
  ASSERT_OK(fp::SetForTesting("exec.groupby.alloc:cancel"));
  Result<QueryResult> r = ExecuteExact(t, GroupQuery());
  fp::ClearForTesting();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  ASSERT_OK_AND_ASSIGN(QueryResult again, ExecuteExact(t, GroupQuery()));
  EXPECT_GT(again.num_groups(), 0u);
}

class GovernedMappedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/governance_mapped.cvt";
    SetDefaultChunkRowsForTesting(512);  // many chunks for the scan loop
    // A starved chunk cache keeps every GetChunk an actual decode, so the
    // mapped.chunk_decode fail point sees each scan's full chunk stream.
    SetChunkCacheBudgetForTesting(1);
    ASSERT_OK(WriteTableFile(table_, path_));
  }
  void TearDown() override {
    SetDefaultChunkRowsForTesting(0);
    SetChunkCacheBudgetForTesting(0);
    fp::ClearForTesting();
    std::remove(path_.c_str());
  }
  Table table_ = MakeSkewedTable(10, 400);
  std::string path_;
};

TEST_F(GovernedMappedTest, AdaptiveDegradationBitIdentical) {
  // In-memory aggregation chunking follows the resolved thread count while
  // the mapped scan accumulates in fixed chunk order, so cross-path bitwise
  // comparison pins to one thread (same idiom as mapped_table_test).
  ScopedExecThreads serial(1);
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path_));
  const QuerySpec q = FilteredQuery();
  ASSERT_OK_AND_ASSIGN(QueryResult exact, ExecuteExact(table_, q));

  // Ungoverned: the adaptive path materializes and matches exactly.
  ASSERT_OK_AND_ASSIGN(QueryResult fast, ExecuteGroupByAdaptive(mt, q));
  ExpectBitIdentical(exact, fast);

  // Tiny budget: materialization is refused, the out-of-core scan answers
  // — bit-identical, with the budget intact afterwards.
  QueryContext tight;
  tight.set_memory_limit(1024);
  {
    ScopedQueryContext install(&tight);
    ASSERT_OK_AND_ASSIGN(QueryResult slow, ExecuteGroupByAdaptive(mt, q));
    ExpectBitIdentical(exact, slow);
  }
  EXPECT_EQ(tight.budget().used(), 0u);

  // Forced mid-flight exhaustion: the reservation fits but the in-memory
  // executor reports kResourceExhausted (injected), so the adaptive path
  // retries out-of-core — still bit-identical. The mapped scan never
  // evaluates the in-memory allocation site, so an every-hit policy is
  // safe.
  ASSERT_OK(fp::SetForTesting("exec.groupby.alloc:resource"));
  QueryContext roomy;
  MakePermissive(&roomy);
  {
    ScopedQueryContext install(&roomy);
    ASSERT_OK_AND_ASSIGN(QueryResult retried, ExecuteGroupByAdaptive(mt, q));
    ExpectBitIdentical(exact, retried);
  }
  EXPECT_GE(fp::HitCount("exec.groupby.alloc"), 1u);
}

TEST_F(GovernedMappedTest, MappedScanHonorsCancellation) {
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path_));
  QueryContext ctx;
  ctx.Cancel();
  ScopedQueryContext install(&ctx);
  Result<QueryResult> r = ExecuteGroupByMapped(mt, GroupQuery());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernedMappedTest, InjectedDecodeFaultLeavesCachesUsable) {
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path_));
  const QuerySpec q = FilteredQuery();
  ASSERT_OK_AND_ASSIGN(QueryResult baseline, ExecuteGroupByMapped(mt, q));

  // Fail the Nth chunk decode for several N: each aborted scan must leave
  // the decoded-chunk LRU and the plan cache consistent, proven by a clean
  // re-run matching the baseline bitwise.
  for (int nth : {1, 3, 7}) {
    ASSERT_OK(fp::SetForTesting("mapped.chunk_decode:error@" +
                                std::to_string(nth)));
    Result<QueryResult> r = ExecuteGroupByMapped(mt, q);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
    fp::ClearForTesting();
    ASSERT_OK_AND_ASSIGN(QueryResult after, ExecuteGroupByMapped(mt, q));
    ExpectBitIdentical(baseline, after);
  }

  // Same for the per-chunk governance site of the scan loop.
  ASSERT_OK(fp::SetForTesting("exec.mapped.chunk:cancel@2"));
  Result<QueryResult> r = ExecuteGroupByMapped(mt, q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  fp::ClearForTesting();
  ASSERT_OK_AND_ASSIGN(QueryResult after, ExecuteGroupByMapped(mt, q));
  ExpectBitIdentical(baseline, after);
}

TEST_F(GovernedMappedTest, OpenFailpointInjects) {
  ASSERT_OK(fp::SetForTesting("mapped.open:error"));
  Result<MappedTable> r = MappedTable::Open(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  fp::ClearForTesting();
  ASSERT_OK_AND_ASSIGN(MappedTable mt, MappedTable::Open(path_));
  EXPECT_EQ(mt.num_rows(), table_.num_rows());
}

TEST(GovernancePartialDrawTest, DeadlineDegradedDrawFlagsShortfall) {
  Table t = MakeSkewedTable(6, 200);
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  std::vector<uint64_t> sizes(shared->num_strata(), 40);

  // allow_partial + an already-expired deadline: every stratum is skipped,
  // flagged, and the draw still returns OK with an honest empty sample.
  QueryContext ctx;
  ctx.set_deadline(QueryContext::Clock::now() - std::chrono::seconds(1));
  ctx.set_allow_partial(true);
  ScopedQueryContext install(&ctx);
  Rng rng(101);
  ASSERT_OK_AND_ASSIGN(StratifiedSample sample,
                       DrawStratified(t, shared, sizes, "test", &rng));
  EXPECT_EQ(sample.size(), 0u);
  EXPECT_EQ(sample.num_degraded_strata(), shared->num_strata());
  for (uint8_t f : sample.stratum_exhaustive()) EXPECT_EQ(f, 0);
}

TEST(GovernancePartialDrawTest, WithoutAllowPartialDeadlineFailsTyped) {
  Table t = MakeSkewedTable(6, 200);
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  std::vector<uint64_t> sizes(shared->num_strata(), 40);
  QueryContext ctx;
  ctx.set_deadline(QueryContext::Clock::now() - std::chrono::seconds(1));
  ScopedQueryContext install(&ctx);
  Rng rng(101);
  Result<StratifiedSample> r = DrawStratified(t, shared, sizes, "test", &rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernancePartialDrawTest, AllowPartialAloneDoesNotChangeTheDraw) {
  // allow_partial steers the draw onto the per-stratum list path; by the
  // documented path equivalence the drawn sample must match the ungoverned
  // draw bit for bit when nothing fires.
  Table t = MakeSkewedTable(8, 150);
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  std::vector<uint64_t> sizes(shared->num_strata(), 30);
  Rng rng_a(77);
  ASSERT_OK_AND_ASSIGN(StratifiedSample plain,
                       DrawStratified(t, shared, sizes, "test", &rng_a));
  QueryContext ctx;
  MakePermissive(&ctx);
  ctx.set_allow_partial(true);
  ScopedQueryContext install(&ctx);
  Rng rng_b(77);
  ASSERT_OK_AND_ASSIGN(StratifiedSample governed,
                       DrawStratified(t, shared, sizes, "test", &rng_b));
  ASSERT_EQ(plain.rows().size(), governed.rows().size());
  EXPECT_EQ(plain.rows(), governed.rows());
  EXPECT_EQ(plain.weights(), governed.weights());
  EXPECT_EQ(governed.num_degraded_strata(), 0u);
}

TEST(GovernancePartialDrawTest, DegradedStrataSurfaceInErrorReport) {
  Table t = MakeSkewedTable(5, 120);
  AqpEngine engine(&t);
  QuerySpec q = GroupQuery();
  q.name = "report";

  // Draw a sample under an expired deadline with allow_partial, register
  // it, and check Evaluate surfaces the degradation count.
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  auto shared = std::make_shared<Stratification>(std::move(strat));
  std::vector<uint64_t> sizes(shared->num_strata(), 25);
  QueryContext ctx;
  ctx.set_deadline(QueryContext::Clock::now() - std::chrono::seconds(1));
  ctx.set_allow_partial(true);
  StratifiedSample sample = [&] {
    ScopedQueryContext install(&ctx);
    Rng rng(55);
    auto r = DrawStratified(t, shared, sizes, "partial", &rng);
    CVOPT_CHECK(r.ok(), "draw failed");
    return std::move(r).value();
  }();
  const size_t degraded = sample.num_degraded_strata();
  ASSERT_GT(degraded, 0u);
  engine.AddSample("partial", std::move(sample));
  ASSERT_OK_AND_ASSIGN(ErrorReport report, engine.Evaluate("partial", q));
  EXPECT_EQ(report.degraded_strata, degraded);
  EXPECT_NE(report.ToString().find("skipped by deadline"), std::string::npos);
}

TEST(GovernanceStatsTest, GovernedStatsCollectionMatchesUngoverned) {
  Table t = MakeSkewedTable(9, 300);
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  std::vector<StatSource> sources(1);
  sources[0].column = &t.column(1);
  ASSERT_OK_AND_ASSIGN(GroupStatsTable plain,
                       CollectGroupStats(strat, sources));
  QueryContext ctx;
  MakePermissive(&ctx);
  ScopedQueryContext install(&ctx);
  ASSERT_OK_AND_ASSIGN(GroupStatsTable governed,
                       CollectGroupStats(strat, sources));
  ASSERT_EQ(plain.num_strata(), governed.num_strata());
  for (size_t s = 0; s < plain.num_strata(); ++s) {
    EXPECT_EQ(plain.At(s, 0).count(), governed.At(s, 0).count());
    EXPECT_EQ(plain.At(s, 0).mean(), governed.At(s, 0).mean());
  }
}

TEST(GovernanceStatsTest, CancelledStatsCollectionFailsTyped) {
  Table t = MakeSkewedTable(9, 300);
  ASSERT_OK_AND_ASSIGN(Stratification strat, Stratification::Build(t, {"g"}));
  std::vector<StatSource> sources(1);
  sources[0].column = &t.column(1);
  QueryContext ctx;
  ctx.Cancel();
  ScopedQueryContext install(&ctx);
  Result<GroupStatsTable> r = CollectGroupStats(strat, sources);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace cvopt
