// Tests for the per-(table, predicate) compiled-plan cache.
#include <gtest/gtest.h>

#include "src/expr/plan_cache.h"
#include "src/table/table_builder.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

class PlanCacheTest : public testing::Test {
 protected:
  void SetUp() override { ClearPlanCache(); }
  void TearDown() override { ClearPlanCache(); }
};

TEST_F(PlanCacheTest, StructurallyEqualPredicatesShareOnePlan) {
  Table t = MakeStudentTable();
  // Distinct tree objects, identical structure.
  const PredicatePtr a = Predicate::Compare("age", CompareOp::kGt, Value(23));
  const PredicatePtr b = Predicate::Compare("age", CompareOp::kGt, Value(23));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> pa,
                       CompilePredicateCached(t, a));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> pb,
                       CompilePredicateCached(t, b));
  EXPECT_EQ(pa.get(), pb.get());
  const PlanCacheStats stats = GetPlanCacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // The shared plan evaluates correctly.
  EXPECT_EQ(pa->Select().size(), 5u);  // ages 25, 24, 28, 27, 26
}

TEST_F(PlanCacheTest, DifferentLiteralsDoNotShare) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> pa,
                       CompilePredicateCached(
                           t, Predicate::Compare("age", CompareOp::kGt, Value(23))));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> pb,
                       CompilePredicateCached(
                           t, Predicate::Compare("age", CompareOp::kGt, Value(24))));
  EXPECT_NE(pa.get(), pb.get());
  EXPECT_EQ(GetPlanCacheStats().entries, 2u);
}

TEST_F(PlanCacheTest, DifferentTablesDoNotShare) {
  Table t1 = MakeStudentTable();
  Table t2 = MakeStudentTable();
  EXPECT_NE(t1.id(), t2.id());
  const PredicatePtr p = Predicate::Compare("age", CompareOp::kGt, Value(23));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> p1,
                       CompilePredicateCached(t1, p));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> p2,
                       CompilePredicateCached(t2, p));
  EXPECT_NE(p1.get(), p2.get());
}

TEST_F(PlanCacheTest, CopiedTableGetsFreshIdentity) {
  Table t1 = MakeStudentTable();
  Table t2 = t1;  // copy: distinct column storage, must not share plans
  EXPECT_NE(t1.id(), t2.id());
  const uint64_t original = t1.id();
  Table t3 = std::move(t1);  // move: storage travels, identity travels too
  EXPECT_EQ(t3.id(), original);
  // The moved-from husk is re-identified and emptied, so it can never hit
  // t3's cached plans.
  EXPECT_NE(t1.id(), original);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(t1.num_rows(), 0u);
}

TEST_F(PlanCacheTest, NullPredicateCachesConstantTrue) {
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> pa,
                       CompilePredicateCached(t, nullptr));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const CompiledPredicate> pb,
                       CompilePredicateCached(t, nullptr));
  EXPECT_EQ(pa.get(), pb.get());
  EXPECT_EQ(pa->Select().size(), t.num_rows());
}

TEST_F(PlanCacheTest, CompilationErrorsAreNotCached) {
  Table t = MakeStudentTable();
  const PredicatePtr bad =
      Predicate::Compare("no_such_column", CompareOp::kEq, Value(1));
  EXPECT_FALSE(CompilePredicateCached(t, bad).ok());
  EXPECT_EQ(GetPlanCacheStats().entries, 0u);
}

TEST_F(PlanCacheTest, EvictionKeepsTheCacheBounded) {
  Table t = MakeStudentTable();
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK_AND_ASSIGN(
        std::shared_ptr<const CompiledPredicate> p,
        CompilePredicateCached(
            t, Predicate::Compare("age", CompareOp::kGt, Value(i))));
    (void)p;
  }
  EXPECT_LE(GetPlanCacheStats().entries, 256u);
}

TEST_F(PlanCacheTest, FingerprintDistinguishesStructure) {
  const PredicatePtr cmp = Predicate::Compare("a", CompareOp::kLt, Value(3));
  EXPECT_EQ(cmp->Fingerprint(),
            Predicate::Compare("a", CompareOp::kLt, Value(3))->Fingerprint());
  EXPECT_NE(cmp->Fingerprint(),
            Predicate::Compare("a", CompareOp::kLe, Value(3))->Fingerprint());
  EXPECT_NE(cmp->Fingerprint(),
            Predicate::Compare("b", CompareOp::kLt, Value(3))->Fingerprint());
  EXPECT_NE(cmp->Fingerprint(),
            Predicate::Compare("a", CompareOp::kLt, Value(3.0))->Fingerprint());
  const PredicatePtr lhs = Predicate::Compare("a", CompareOp::kEq, Value(1));
  const PredicatePtr rhs = Predicate::Compare("b", CompareOp::kEq, Value(2));
  EXPECT_NE(Predicate::And(lhs, rhs)->Fingerprint(),
            Predicate::Or(lhs, rhs)->Fingerprint());
  EXPECT_NE(Predicate::And(lhs, rhs)->Fingerprint(),
            Predicate::And(rhs, lhs)->Fingerprint());
  EXPECT_NE(Predicate::In("a", {Value(1), Value(2)})->Fingerprint(),
            Predicate::In("a", {Value(2), Value(1)})->Fingerprint());
  EXPECT_NE(Predicate::Not(lhs)->Fingerprint(), lhs->Fingerprint());
}

}  // namespace
}  // namespace cvopt
