// Tests for the SQL front-end: the paper's appendix queries should parse
// into the same QuerySpecs the benches build programmatically.
#include <gtest/gtest.h>

#include "src/exec/cube.h"
#include "src/exec/group_by_executor.h"
#include "src/sql/parser.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

TEST(SqlParserTest, SimpleAvgGroupBy) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p, ParseSql("SELECT major, AVG(gpa) FROM Student GROUP BY major"));
  EXPECT_EQ(p.table_name, "Student");
  EXPECT_EQ(p.query.group_by, (std::vector<std::string>{"major"}));
  ASSERT_EQ(p.query.aggregates.size(), 1u);
  EXPECT_EQ(p.query.aggregates[0].Label(), "AVG(gpa)");
  EXPECT_FALSE(p.with_cube);
  EXPECT_EQ(p.query.where, nullptr);
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p,
      ParseSql("select major, avg(gpa) from Student group by major"));
  EXPECT_EQ(p.query.group_by, (std::vector<std::string>{"major"}));
}

TEST(SqlParserTest, MultipleAggregatesAndColumns) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p,
      ParseSql("SELECT country, parameter, SUM(value), COUNT(*) "
               "FROM OpenAQ GROUP BY country, parameter"));
  ASSERT_EQ(p.query.aggregates.size(), 2u);
  EXPECT_EQ(p.query.aggregates[0].Label(), "SUM(value)");
  EXPECT_EQ(p.query.aggregates[1].Label(), "COUNT(*)");
  EXPECT_EQ(p.query.group_by,
            (std::vector<std::string>{"country", "parameter"}));
}

TEST(SqlParserTest, WherePredicates) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p,
      ParseSql("SELECT major, AVG(gpa) FROM s "
               "WHERE college = 'Science' AND age > 21 GROUP BY major"));
  ASSERT_NE(p.query.where, nullptr);
  EXPECT_EQ(p.query.where->ToString(), "(college = Science AND age > 21)");
}

TEST(SqlParserTest, BetweenInNotParens) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p,
      ParseSql("SELECT g, AVG(v) FROM t WHERE (hour BETWEEN 0 AND 11 "
               "OR major IN ('CS', 'EE')) AND NOT age <= 20 GROUP BY g"));
  ASSERT_NE(p.query.where, nullptr);
  EXPECT_EQ(p.query.where->ToString(),
            "((hour BETWEEN 0 AND 11 OR major IN (CS, EE)) AND NOT (age <= 20))");
}

TEST(SqlParserTest, CountIfAggregate) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p,
      ParseSql("SELECT country, COUNT_IF(value > 0.04) FROM t GROUP BY country"));
  ASSERT_EQ(p.query.aggregates.size(), 1u);
  EXPECT_EQ(p.query.aggregates[0].func, AggFunc::kCountIf);
  EXPECT_EQ(p.query.aggregates[0].Label(), "COUNT_IF(value > 0.04)");
}

TEST(SqlParserTest, WithCube) {
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p,
      ParseSql("SELECT country, parameter, SUM(value) FROM OpenAQ "
               "GROUP BY country, parameter WITH CUBE"));
  EXPECT_TRUE(p.with_cube);
  EXPECT_EQ(ExpandCube(p.query).size(), 4u);
}

TEST(SqlParserTest, ComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    const std::string sql =
        std::string("SELECT AVG(v) FROM t WHERE x ") + op + " 5";
    ASSERT_OK_AND_ASSIGN(ParsedQuery p, ParseSql(sql));
    ASSERT_NE(p.query.where, nullptr) << op;
  }
}

TEST(SqlParserTest, NumericLiteralTypes) {
  // Integral literals compare against int columns; decimals are doubles.
  ASSERT_OK_AND_ASSIGN(ParsedQuery p1,
                       ParseSql("SELECT AVG(v) FROM t WHERE age = 21"));
  ASSERT_OK_AND_ASSIGN(ParsedQuery p2,
                       ParseSql("SELECT AVG(v) FROM t WHERE gpa > 3.5"));
  EXPECT_EQ(p1.query.where->ToString(), "age = 21");
  EXPECT_EQ(p2.query.where->ToString(), "gpa > 3.5");
}

TEST(SqlParserTest, FullTableQueryNoGroupBy) {
  ASSERT_OK_AND_ASSIGN(ParsedQuery p, ParseSql("SELECT COUNT(*) FROM t"));
  EXPECT_TRUE(p.query.group_by.empty());
}

TEST(SqlParserTest, TrailingSemicolonOk) {
  EXPECT_TRUE(ParseSql("SELECT COUNT(*) FROM t;").ok());
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT major FROM t").ok());            // no aggregate
  EXPECT_FALSE(ParseSql("SELECT AVG(gpa) FROM").ok());           // no table
  EXPECT_FALSE(ParseSql("SELECT AVG(gpa FROM t").ok());          // bad parens
  EXPECT_FALSE(ParseSql("SELECT AVG(gpa) FROM t WHERE").ok());   // empty pred
  EXPECT_FALSE(ParseSql("SELECT AVG(g) FROM t GROUP BY").ok());  // empty group
  EXPECT_FALSE(ParseSql("SELECT AVG(v) FROM t WHERE x ~ 5").ok());
  EXPECT_FALSE(ParseSql("SELECT AVG(v) FROM t WHERE x = 'unterminated").ok());
  EXPECT_FALSE(ParseSql("SELECT AVG(v) FROM t extra junk").ok());
  // Non-grouped plain column.
  EXPECT_FALSE(
      ParseSql("SELECT major, AVG(gpa) FROM t GROUP BY college").ok());
}

TEST(SqlParserTest, ParsedQueryExecutes) {
  // End-to-end: parse the paper's example query and run it exactly.
  Table t = MakeStudentTable();
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery p,
      ParseSql("SELECT major, AVG(gpa) FROM Student "
               "WHERE college = 'Science' GROUP BY major"));
  ASSERT_OK_AND_ASSIGN(QueryResult res, ExecuteExact(t, p.query));
  EXPECT_EQ(res.num_groups(), 2u);
  auto cs = res.FindByLabel("CS");
  ASSERT_TRUE(cs.has_value());
  EXPECT_DOUBLE_EQ(res.value(*cs, 0), 3.25);
}

TEST(SqlParserTest, PaperAppendixQueriesParse) {
  // The paper's appendix queries (adapted to our schema/dialect) all parse.
  const char* queries[] = {
      // AQ2
      "SELECT country, parameter, unit, SUM(value), COUNT(*) FROM OpenAQ "
      "GROUP BY country, parameter, unit",
      // AQ3
      "SELECT country, parameter, unit, AVG(value) FROM OpenAQ "
      "WHERE hour BETWEEN 0 AND 24 GROUP BY country, parameter, unit",
      // AQ5
      "SELECT country, parameter, unit, AVG(value) FROM OpenAQ "
      "WHERE latitude > 0 GROUP BY country, parameter, unit",
      // AQ6
      "SELECT parameter, unit, COUNT_IF(value > 0.5) FROM OpenAQ "
      "WHERE country = 'VN' GROUP BY parameter, unit",
      // AQ7
      "SELECT country, parameter, SUM(value) FROM OpenAQ "
      "GROUP BY country, parameter WITH CUBE",
      // B1
      "SELECT from_station_id, AVG(age), AVG(trip_duration) FROM Bikes "
      "WHERE age > 0 GROUP BY from_station_id",
      // B2
      "SELECT from_station_id, AVG(trip_duration) FROM Bikes "
      "WHERE trip_duration > 0 GROUP BY from_station_id",
      // B4
      "SELECT from_station_id, year, SUM(trip_duration), SUM(age) FROM Bikes "
      "GROUP BY from_station_id, year WITH CUBE",
  };
  for (const char* sql : queries) {
    EXPECT_TRUE(ParseSql(sql).ok()) << sql;
  }
}

}  // namespace
}  // namespace cvopt
