// Zone-map chunk skipping: the differential suite pinning the bit-identity
// contract (zones on == zones off for every chunk size and thread count)
// and the skip-rate guarantee on clustered data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/exec/group_by_executor.h"
#include "src/expr/compiled_predicate.h"
#include "src/expr/plan_cache.h"
#include "src/table/chunk_codec.h"
#include "src/table/table_builder.h"
#include "tests/test_util.h"

namespace cvopt {
namespace {

// Restores chunk-size / pruning globals however a test exits.
class ScopedChunkRows {
 public:
  explicit ScopedChunkRows(size_t rows) { SetDefaultChunkRowsForTesting(rows); }
  ~ScopedChunkRows() { SetDefaultChunkRowsForTesting(0); }
};

class ScopedZoneMaps {
 public:
  explicit ScopedZoneMaps(bool on) { SetZoneMapPruningEnabled(on); }
  ~ScopedZoneMaps() { SetZoneMapPruningEnabled(true); }
};

// Clustered dataset: `t` ascending (timestamp-like, the zone-map-friendly
// layout), `region` changes in long runs, `v` Gaussian with sprinkled NaNs,
// `id` uniform noise (zone-map-hostile).
Table MakeClusteredTable(size_t rows) {
  Schema schema({{"t", DataType::kInt64},
                 {"region", DataType::kString},
                 {"v", DataType::kDouble},
                 {"id", DataType::kInt64}});
  TableBuilder b(schema);
  Rng rng(4242);
  const char* regions[] = {"north", "south", "east", "west", "center"};
  for (size_t i = 0; i < rows; ++i) {
    double v = 3.0 + rng.NextGaussian();
    if (i % 503 == 0) v = std::numeric_limits<double>::quiet_NaN();
    Status st = b.AppendRow({Value(static_cast<int64_t>(i)),
                             Value(regions[(i / 1000) % 5]), Value(v),
                             Value(static_cast<int64_t>(rng.Uniform(1000)))});
    CVOPT_CHECK(st.ok(), "append failed");
  }
  return std::move(b).Finish();
}

std::vector<QuerySpec> MakeQueries(size_t rows) {
  const auto t_lo = static_cast<int64_t>(rows / 2);
  const auto t_hi = static_cast<int64_t>(rows / 2 + rows / 100 - 1);
  std::vector<QuerySpec> qs;
  {
    QuerySpec q;
    q.name = "narrow-range";
    q.group_by = {"region"};
    q.aggregates = {AggSpec::Avg("v"), AggSpec::Sum("v"), AggSpec::Count()};
    q.where = Predicate::Between("t", Value(t_lo), Value(t_hi));
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "string-eq";
    q.group_by = {"region"};
    q.aggregates = {AggSpec::Variance("v"),
                    AggSpec::CountIf(
                        Predicate::Compare("v", CompareOp::kGt, Value(3.0)))};
    q.where = Predicate::Compare("region", CompareOp::kEq, Value("east"));
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "no-where-median";
    q.group_by = {"region"};
    q.aggregates = {AggSpec::Median("v"), AggSpec::Count()};
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "double-nan";
    q.group_by = {"region"};
    q.aggregates = {AggSpec::Sum("v"), AggSpec::Count()};
    q.where = Predicate::Compare("v", CompareOp::kGt, Value(3.0));
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "bool-combo";
    q.group_by = {"region"};
    q.aggregates = {AggSpec::Count(), AggSpec::Avg("v")};
    q.where = Predicate::Or(
        Predicate::And(
            Predicate::Compare("t", CompareOp::kLt, Value(int64_t{2000})),
            Predicate::Not(
                Predicate::Compare("region", CompareOp::kEq, Value("north")))),
        Predicate::In("id", {Value(int64_t{1}), Value(int64_t{500})}));
    qs.push_back(q);
  }
  {
    QuerySpec q;
    q.name = "full-table";
    q.aggregates = {AggSpec::Count(), AggSpec::Sum("id")};
    q.where = Predicate::Compare("t", CompareOp::kGe, Value(int64_t{0}));
    qs.push_back(q);
  }
  return qs;
}

// Bitwise comparison: group order, labels, and value bit patterns (NaN-safe).
void ExpectResultsIdentical(const QueryResult& a, const QueryResult& b,
                            const std::string& what) {
  ASSERT_EQ(a.num_groups(), b.num_groups()) << what;
  ASSERT_EQ(a.num_aggregates(), b.num_aggregates()) << what;
  for (size_t g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.label(g), b.label(g)) << what << " group " << g;
    const std::vector<double> va = a.values(g);
    const std::vector<double> vb = b.values(g);
    ASSERT_EQ(va.size(), vb.size());
    EXPECT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)), 0)
        << what << " group " << g << " (" << a.label(g) << ")";
  }
}

// The engine's documented cross-thread contract (tests/parallel_exec_test.cc):
// group order, labels, and integer COUNT / COUNT_IF are bit-exact for every
// thread count; float aggregates merge per-chunk partials whose chunk count
// follows the thread budget — the "documented float-summation reassociation"
// of AccumulateChunked — so they compare within a relative tolerance.
void ExpectResultsEquivalent(const QueryResult& a, const QueryResult& b,
                             const std::string& what) {
  ASSERT_EQ(a.num_groups(), b.num_groups()) << what;
  ASSERT_EQ(a.num_aggregates(), b.num_aggregates()) << what;
  for (size_t g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.label(g), b.label(g)) << what << " group " << g;
    for (size_t j = 0; j < a.num_aggregates(); ++j) {
      const double s = a.value(g, j);
      const double p = b.value(g, j);
      if (std::isnan(s) || std::isnan(p)) {
        // A NaN input poisons a group's SUM/AVG for every chunking alike.
        EXPECT_EQ(std::isnan(s), std::isnan(p))
            << what << " group " << g << " " << a.agg_labels()[j];
      } else if (a.agg_labels()[j].rfind("COUNT", 0) == 0) {
        EXPECT_EQ(p, s) << what << " group " << g << " " << a.agg_labels()[j];
      } else {
        EXPECT_NEAR(p, s, 1e-9 * std::max(1.0, std::fabs(s)))
            << what << " group " << g << " " << a.agg_labels()[j];
      }
    }
  }
}

TEST(ZoneMapTest, DifferentialAcrossChunkSizesAndThreads) {
  constexpr size_t kRows = 100'000;

  // What PR 7 must keep bitwise: at any fixed thread count, results are
  // invariant to zone-map pruning and to the storage chunk geometry —
  // selection vectors are position-identical whatever the morsel/chunk
  // cuts, and aggregation partials are split over selection positions, not
  // storage chunks. Across thread counts the engine's pre-existing
  // contract applies (ExpectResultsEquivalent above), no worse than before.
  std::vector<QueryResult> serial_oracle;
  for (int threads : {1, 2, 3, 8}) {
    ScopedExecThreads pool(threads);

    // Oracle at this thread count: flat scan (zones off), default chunking.
    std::vector<QueryResult> oracle;
    {
      ScopedZoneMaps off(false);
      ClearPlanCache();
      Table t = MakeClusteredTable(kRows);
      for (const auto& q : MakeQueries(kRows)) {
        ASSERT_OK_AND_ASSIGN(QueryResult r, ExecuteExact(t, q));
        oracle.push_back(std::move(r));
      }
    }
    const auto queries = MakeQueries(kRows);
    if (threads == 1) {
      serial_oracle = oracle;
    } else {
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ExpectResultsEquivalent(
            serial_oracle[qi], oracle[qi],
            queries[qi].name + " threads=" + std::to_string(threads) +
                " vs serial");
      }
    }

    for (size_t chunk_rows : {size_t{1000}, size_t{4096}, size_t{65536}}) {
      ScopedChunkRows cs(chunk_rows);
      Table t = MakeClusteredTable(kRows);
      ClearPlanCache();  // fresh compiles under each configuration
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ASSERT_OK_AND_ASSIGN(QueryResult r, ExecuteExact(t, queries[qi]));
        ExpectResultsIdentical(
            oracle[qi], r,
            queries[qi].name + " chunk=" + std::to_string(chunk_rows) +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(ZoneMapTest, SelectionDifferentialZonesOnVsOff) {
  constexpr size_t kRows = 50'000;
  ScopedChunkRows cs(1000);
  Table t = MakeClusteredTable(kRows);
  const std::vector<PredicatePtr> preds = {
      Predicate::Between("t", Value(int64_t{10'000}), Value(int64_t{10'499})),
      Predicate::Compare("t", CompareOp::kLt, Value(int64_t{777})),
      Predicate::Compare("region", CompareOp::kEq, Value("south")),
      Predicate::Compare("v", CompareOp::kNe, Value(2.5)),
      Predicate::Not(
          Predicate::Compare("t", CompareOp::kGe, Value(int64_t{40'000}))),
      Predicate::True(),
  };
  for (const auto& p : preds) {
    ASSERT_OK_AND_ASSIGN(CompiledPredicate cp,
                         CompiledPredicate::Compile(t, *p));
    SetZoneMapPruningEnabled(true);
    const std::vector<uint32_t> pruned = cp.Select();
    SetZoneMapPruningEnabled(false);
    const std::vector<uint32_t> flat = cp.Select();
    SetZoneMapPruningEnabled(true);
    EXPECT_EQ(pruned, flat) << p->ToString();

    // Range cuts never change the result either.
    const std::vector<uint32_t> a = cp.SelectRange(0, kRows / 3);
    const std::vector<uint32_t> b = cp.SelectRange(kRows / 3, kRows);
    std::vector<uint32_t> glued = a;
    glued.insert(glued.end(), b.begin(), b.end());
    EXPECT_EQ(glued, pruned) << p->ToString();
  }
}

TEST(ZoneMapTest, ClusteredOnePercentSelectivitySkipsMostChunks) {
  constexpr size_t kRows = 100'000;
  ScopedChunkRows cs(1000);  // 100 chunks
  Table t = MakeClusteredTable(kRows);
  // 1% of the rows, contiguous in `t` (clustered layout).
  const PredicatePtr p =
      Predicate::Between("t", Value(int64_t{50'000}), Value(int64_t{50'999}));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate cp, CompiledPredicate::Compile(t, *p));
  ResetZoneSkipStats();
  const std::vector<uint32_t> sel = cp.Select();
  EXPECT_EQ(sel.size(), 1000u);
  const ZoneSkipStats stats = GetZoneSkipStats();
  ASSERT_EQ(stats.chunks, 100u);
  // Acceptance bar: >= 90% of chunks skipped at 1% selectivity.
  EXPECT_GE(stats.skipped, 90u);
}

TEST(ZoneMapTest, ProvablyTrueChunksShortCircuit) {
  constexpr size_t kRows = 50'000;
  ScopedChunkRows cs(1000);
  Table t = MakeClusteredTable(kRows);
  const PredicatePtr p =
      Predicate::Compare("t", CompareOp::kLt, Value(int64_t{25'000}));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate cp, CompiledPredicate::Compile(t, *p));
  ResetZoneSkipStats();
  const std::vector<uint32_t> sel = cp.Select();
  EXPECT_EQ(sel.size(), 25'000u);
  const ZoneSkipStats stats = GetZoneSkipStats();
  EXPECT_EQ(stats.take_all, 25u);
  EXPECT_EQ(stats.skipped, 25u);
}

TEST(ZoneMapTest, AllNanChunksAreSkippedForDoublePredicates) {
  ScopedChunkRows cs(64);
  Schema schema({{"x", DataType::kDouble}});
  TableBuilder b(schema);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(b.AppendRow({Value(nan)}));  // chunk 0: all NaN
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(b.AppendRow({Value(1.0)}));  // chunk 1: all 1.0
  }
  Table t = std::move(b).Finish();
  // NaN matches nothing, including `!=`.
  ASSERT_OK_AND_ASSIGN(
      CompiledPredicate ne,
      CompiledPredicate::Compile(
          t, *Predicate::Compare("x", CompareOp::kNe, Value(5.0))));
  ResetZoneSkipStats();
  EXPECT_EQ(ne.Select().size(), 64u);
  const ZoneSkipStats stats = GetZoneSkipStats();
  EXPECT_EQ(stats.skipped, 1u);   // the all-NaN chunk
  EXPECT_EQ(stats.take_all, 1u);  // the all-1.0 chunk (NaN-free)
}

TEST(ZoneMapTest, MaskRangeMatchesSelection) {
  constexpr size_t kRows = 20'000;
  ScopedChunkRows cs(1000);
  Table t = MakeClusteredTable(kRows);
  const PredicatePtr p =
      Predicate::Between("t", Value(int64_t{5'000}), Value(int64_t{5'199}));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate cp, CompiledPredicate::Compile(t, *p));
  const std::vector<uint32_t> sel = cp.Select();
  // Unaligned window straddling skip / residual / take-all chunks.
  const size_t lo = 4'321, hi = 17'777;
  std::vector<uint8_t> mask(hi - lo);
  cp.EvalMaskRange(lo, hi, mask.data());
  std::vector<uint32_t> from_mask;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) from_mask.push_back(static_cast<uint32_t>(lo + i));
  }
  std::vector<uint32_t> expect;
  for (uint32_t r : sel) {
    if (r >= lo && r < hi) expect.push_back(r);
  }
  EXPECT_EQ(from_mask, expect);
}

}  // namespace
}  // namespace cvopt
